"""Anonymization and JSONL round-trip tests."""

from pathlib import Path

import pytest

from repro.dataset.anonymize import AnonymizationMap, anonymize_record, anonymize_snapshot
from repro.dataset.io import (
    DatasetFormatError,
    iter_snapshots,
    read_snapshots,
    write_snapshots,
)
from repro.scanner.records import (
    CertificateInfo,
    EndpointRecord,
    HostRecord,
    MeasurementSnapshot,
    NodeSummary,
)


def make_record(ip=167772161, asn=64600):
    return HostRecord(
        ip=ip,
        port=4840,
        asn=asn,
        timestamp="2020-08-30T00:00:00",
        tcp_open=True,
        is_opcua=True,
        application_uri="urn:bachmann:m1:device:42",
        application_type=0,
        endpoints=[
            EndpointRecord(
                endpoint_url="opc.tcp://10.0.0.1:4840/",
                security_mode=1,
                security_policy_uri="http://opcfoundation.org/UA/SecurityPolicy#None",
                token_types=[0],
            )
        ],
        certificate=CertificateInfo(
            der_hex="aabb",
            thumbprint_hex="cc",
            signature_hash="sha1",
            key_bits=2048,
            subject="O=Bachmann electronic GmbH,CN=device-42.plant.example",
            issuer="O=Bachmann electronic GmbH,CN=device-42.plant.example",
            not_before="2019-01-01T00:00:00",
            not_after="2029-01-01T00:00:00",
            application_uri="urn:bachmann:m1:device:42",
            self_signed=True,
            signature_valid=True,
            modulus_hex="c0ffee",
        ),
        namespaces=["http://bachmann.info/UA/M1"],
        nodes=NodeSummary(
            total_nodes=10,
            variables=5,
            methods=1,
            readable_variables=5,
            readable_names_sample=["sLicensePlate"],
        ),
    )


class TestAnonymization:
    def test_ip_renumbered_consecutively(self):
        mapping = AnonymizationMap()
        first = anonymize_record(make_record(ip=1111), mapping)
        second = anonymize_record(make_record(ip=2222), mapping)
        again = anonymize_record(make_record(ip=1111), mapping)
        assert first.ip == 1
        assert second.ip == 2
        assert again.ip == 1  # stable pseudonyms

    def test_asn_renumbered(self):
        mapping = AnonymizationMap()
        record = anonymize_record(make_record(asn=64600), mapping)
        assert record.asn == 1

    def test_certificate_fields_blackened(self):
        record = anonymize_record(make_record(), AnonymizationMap())
        assert "plant.example" not in record.certificate.subject
        assert "Bachmann" in record.certificate.subject  # org kept
        assert record.certificate.der_hex == ""
        assert record.certificate.application_uri == "[redacted]"

    def test_payload_excluded(self):
        record = anonymize_record(make_record(), AnonymizationMap())
        assert record.nodes.readable_names_sample == []
        assert record.nodes.readable_variables == 5  # counts kept

    def test_endpoint_urls_dropped(self):
        record = anonymize_record(make_record(), AnonymizationMap())
        assert all(e.endpoint_url is None for e in record.endpoints)

    def test_manufacturer_attribution_survives(self):
        from repro.deployments.manufacturers import classify_application_uri

        record = anonymize_record(make_record(), AnonymizationMap())
        assert classify_application_uri(record.application_uri) == "Bachmann"

    def test_analysis_still_works_on_anonymized_data(self):
        from repro.analysis.modes import analyze_security_modes

        snapshot = MeasurementSnapshot(
            date="2020-08-30", records=[make_record()]
        )
        released = anonymize_snapshot(snapshot, AnonymizationMap())
        stats = analyze_security_modes(released.records)
        assert stats.supported["N"] == 1


class TestJsonl:
    def test_round_trip(self, tmp_path: Path):
        snapshot = MeasurementSnapshot(
            date="2020-08-30",
            records=[make_record(ip=i) for i in range(5)],
            probed=100,
            port_open=5,
        )
        path = tmp_path / "data.jsonl"
        write_snapshots(path, [snapshot])
        loaded = read_snapshots(path)
        assert len(loaded) == 1
        assert loaded[0].date == "2020-08-30"
        assert loaded[0].probed == 100
        assert loaded[0].records == snapshot.records

    def test_multiple_snapshots(self, tmp_path: Path):
        snapshots = [
            MeasurementSnapshot(date=f"2020-0{i}-01", records=[make_record()])
            for i in range(1, 4)
        ]
        path = tmp_path / "multi.jsonl"
        write_snapshots(path, snapshots)
        loaded = read_snapshots(path)
        assert [s.date for s in loaded] == ["2020-01-01", "2020-02-01", "2020-03-01"]

    def test_record_before_header_rejected(self, tmp_path: Path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ip": 1, "port": 4840, "asn": null, "timestamp": "x"}\n')
        with pytest.raises(ValueError):
            read_snapshots(path)

    def test_gzip_round_trip(self, tmp_path: Path):
        snapshot = MeasurementSnapshot(
            date="2020-08-30", records=[make_record(ip=i) for i in range(3)]
        )
        path = tmp_path / "data.jsonl.gz"
        write_snapshots(path, [snapshot])
        loaded = read_snapshots(path)
        assert loaded[0].records == snapshot.records

    def test_gzip_bytes_are_reproducible(self, tmp_path: Path):
        """mtime=0 keeps the compressed file content-addressed."""
        snapshot = MeasurementSnapshot(date="2020-08-30", records=[make_record()])
        first, second = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        write_snapshots(first, [snapshot])
        write_snapshots(second, [snapshot])
        assert first.read_bytes() == second.read_bytes()

    def test_iter_snapshots_streams_lazily(self, tmp_path: Path):
        snapshots = [
            MeasurementSnapshot(date=f"2020-0{i}-01", records=[make_record()])
            for i in range(1, 4)
        ]
        path = tmp_path / "multi.jsonl"
        write_snapshots(path, snapshots)
        stream = iter_snapshots(path)
        assert next(stream).date == "2020-01-01"
        assert next(stream).date == "2020-02-01"


class TestTruncationValidation:
    """The header's record count is authoritative (satellite bugfix:
    the old reader tracked a ``remaining`` counter it never checked)."""

    def _write(self, tmp_path: Path, count: int = 5) -> Path:
        snapshot = MeasurementSnapshot(
            date="2020-08-30",
            records=[make_record(ip=i) for i in range(count)],
        )
        path = tmp_path / "data.jsonl"
        write_snapshots(path, [snapshot])
        return path

    def test_truncated_tail_rejected(self, tmp_path: Path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(DatasetFormatError, match="truncated"):
            read_snapshots(path)

    def test_short_snapshot_before_next_header_rejected(self, tmp_path: Path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        # Drop one record line, then append a second snapshot header:
        # the count mismatch must surface at the header boundary.
        del lines[2]
        lines.append('{"snapshot": "2020-09-06", "records": 0}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetFormatError, match="precede the next header"):
            read_snapshots(path)

    def test_extra_records_rejected(self, tmp_path: Path):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        lines.append(lines[-1])  # duplicate the last record line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetFormatError, match="more record lines"):
            read_snapshots(path)

    def test_half_written_json_line_rejected(self, tmp_path: Path):
        path = self._write(tmp_path)
        content = path.read_text()
        path.write_text(content[: len(content) - 40])
        with pytest.raises(DatasetFormatError):
            read_snapshots(path)

    def test_byte_truncated_gzip_rejected(self, tmp_path: Path):
        """A .gz cut mid-stream (interrupted write) must surface as a
        DatasetFormatError, not a raw EOFError from gzip."""
        snapshot = MeasurementSnapshot(
            date="2020-08-30",
            records=[make_record(ip=i) for i in range(5)],
        )
        path = tmp_path / "data.jsonl.gz"
        write_snapshots(path, [snapshot])
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(DatasetFormatError, match="truncated"):
            read_snapshots(path)
