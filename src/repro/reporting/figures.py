"""Experiment report objects: paper value vs. measured value."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Comparison:
    """One metric compared against the paper."""

    metric: str
    paper: object
    measured: object

    @property
    def matches_exactly(self) -> bool:
        return self.paper == self.measured

    def relative_error(self) -> float | None:
        try:
            paper = float(self.paper)
            measured = float(self.measured)
        except (TypeError, ValueError):
            return None
        if paper == 0:
            return None if measured == 0 else float("inf")
        return abs(measured - paper) / abs(paper)


@dataclass
class ExperimentReport:
    """The output of one experiment regeneration."""

    experiment_id: str
    title: str
    comparisons: list[Comparison] = field(default_factory=list)
    body: str = ""

    def add(self, metric: str, paper, measured) -> None:
        self.comparisons.append(Comparison(metric, paper, measured))

    def exact_matches(self) -> int:
        return sum(1 for c in self.comparisons if c.matches_exactly)

    def render(self) -> str:
        from repro.reporting.tables import render_table

        rows = [
            [c.metric, c.paper, c.measured, "=" if c.matches_exactly else "~"]
            for c in self.comparisons
        ]
        table = render_table(
            ["metric", "paper", "measured", ""],
            rows,
            title=f"{self.experiment_id}: {self.title}",
        )
        if self.body:
            return f"{table}\n\n{self.body}"
        return table
