"""Per-policy cryptographic operations.

Bridges the abstract algorithm names in :class:`SecurityPolicy` to the
concrete primitives in :mod:`repro.crypto`: asymmetric operations for
OpenSecureChannel protection and symmetric operations for session
traffic.

Every public operation reports its wall time to :data:`OP_STATS`, so
``benchmarks/report.py --profile`` can break secure-handshake time out
by primitive (RSA sign vs. verify vs. encrypt, AES/HMAC for MSG
traffic).  The counters are diagnostic only and never feed back into
any output byte.
"""

from __future__ import annotations

import functools
import random
import time

from repro.crypto import pkcs1
from repro.crypto.aes import AesCbc
from repro.crypto.hmac_prf import hmac_digest
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.secure.keysets import SymmetricKeys
from repro.secure.policies import SecurityPolicy
from repro.util.profiling import CryptoOpStats

#: Secure-handshake operation counters (per process; see
#: :class:`repro.util.profiling.CryptoOpStats`).
OP_STATS = CryptoOpStats()


def _timed(op: str):
    def deco(fn):
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                OP_STATS.record(op, time.perf_counter() - start)

        return inner

    return deco


class SuiteError(Exception):
    """Cryptographic operation failed or is unavailable for the policy."""


# --- asymmetric operations (OPN protection) ---------------------------------


@_timed("asym_encrypt")
def asym_encrypt(
    policy: SecurityPolicy, key: RsaPublicKey, plaintext: bytes, rng: random.Random
) -> bytes:
    """Encrypt ``plaintext`` block-wise with the receiver's public key."""
    block = asym_plaintext_block_size(policy, key)
    out = bytearray()
    for offset in range(0, len(plaintext), block):
        chunk = plaintext[offset : offset + block]
        out.extend(_asym_encrypt_block(policy, key, chunk, rng))
    return bytes(out)


@_timed("asym_decrypt")
def asym_decrypt(policy: SecurityPolicy, key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    cipher_block = key.byte_length
    if len(ciphertext) % cipher_block:
        raise SuiteError("ciphertext is not a whole number of RSA blocks")
    out = bytearray()
    for offset in range(0, len(ciphertext), cipher_block):
        chunk = ciphertext[offset : offset + cipher_block]
        out.extend(_asym_decrypt_block(policy, key, chunk))
    return bytes(out)


def asym_plaintext_block_size(policy: SecurityPolicy, key: RsaPublicKey) -> int:
    if policy.asym_encryption == "rsa15":
        return pkcs1.pkcs1v15_max_plaintext(key.byte_length)
    if policy.asym_encryption == "oaep-sha1":
        return pkcs1.oaep_max_plaintext(key.byte_length, "sha1")
    if policy.asym_encryption == "oaep-sha256":
        return pkcs1.oaep_max_plaintext(key.byte_length, "sha256")
    raise SuiteError(f"policy {policy.name} does not encrypt asymmetrically")


def _asym_encrypt_block(
    policy: SecurityPolicy, key: RsaPublicKey, chunk: bytes, rng: random.Random
) -> bytes:
    if policy.asym_encryption == "rsa15":
        return pkcs1.pkcs1v15_encrypt(key, chunk, rng)
    if policy.asym_encryption == "oaep-sha1":
        return pkcs1.oaep_encrypt(key, chunk, rng, hash_name="sha1")
    if policy.asym_encryption == "oaep-sha256":
        return pkcs1.oaep_encrypt(key, chunk, rng, hash_name="sha256")
    raise SuiteError(f"policy {policy.name} does not encrypt asymmetrically")


def _asym_decrypt_block(
    policy: SecurityPolicy, key: RsaPrivateKey, chunk: bytes
) -> bytes:
    try:
        if policy.asym_encryption == "rsa15":
            return pkcs1.pkcs1v15_decrypt(key, chunk)
        if policy.asym_encryption == "oaep-sha1":
            return pkcs1.oaep_decrypt(key, chunk, hash_name="sha1")
        if policy.asym_encryption == "oaep-sha256":
            return pkcs1.oaep_decrypt(key, chunk, hash_name="sha256")
    except pkcs1.CryptoError as exc:
        raise SuiteError(f"asymmetric decryption failed: {exc}") from exc
    raise SuiteError(f"policy {policy.name} does not encrypt asymmetrically")


@_timed("asym_sign")
def asym_sign(
    policy: SecurityPolicy, key: RsaPrivateKey, data: bytes, rng: random.Random
) -> bytes:
    if policy.asym_signature == "pkcs1-sha1":
        return pkcs1.pkcs1v15_sign(key, "sha1", data)
    if policy.asym_signature == "pkcs1-sha256":
        return pkcs1.pkcs1v15_sign(key, "sha256", data)
    if policy.asym_signature == "pss-sha256":
        return pkcs1.pss_sign(key, "sha256", data, rng)
    raise SuiteError(f"policy {policy.name} does not sign asymmetrically")


@_timed("asym_verify")
def asym_verify(
    policy: SecurityPolicy, key: RsaPublicKey, data: bytes, signature: bytes
) -> bool:
    if policy.asym_signature == "pkcs1-sha1":
        return pkcs1.pkcs1v15_verify(key, "sha1", data, signature)
    if policy.asym_signature == "pkcs1-sha256":
        return pkcs1.pkcs1v15_verify(key, "sha256", data, signature)
    if policy.asym_signature == "pss-sha256":
        return pkcs1.pss_verify(key, "sha256", data, signature)
    raise SuiteError(f"policy {policy.name} does not sign asymmetrically")


def asym_signature_length(policy: SecurityPolicy, key: RsaPrivateKey | RsaPublicKey) -> int:
    if policy.asym_signature is None:
        return 0
    return key.byte_length


# --- symmetric operations (MSG protection) ----------------------------------


def _sym_sign(policy: SecurityPolicy, keys: SymmetricKeys, data: bytes) -> bytes:
    # Untimed body shared by sym_sign and sym_verify, so a verify
    # counts once as "sym_verify" rather than also as a sign.
    if policy.sym_signature_hash is None:
        raise SuiteError(f"policy {policy.name} does not sign symmetrically")
    return hmac_digest(policy.sym_signature_hash, keys.signing_key, data)


@_timed("sym_sign")
def sym_sign(policy: SecurityPolicy, keys: SymmetricKeys, data: bytes) -> bytes:
    return _sym_sign(policy, keys, data)


@_timed("sym_verify")
def sym_verify(
    policy: SecurityPolicy, keys: SymmetricKeys, data: bytes, signature: bytes
) -> bool:
    return _sym_sign(policy, keys, data) == signature


@_timed("sym_encrypt")
def sym_encrypt(policy: SecurityPolicy, keys: SymmetricKeys, plaintext: bytes) -> bytes:
    if policy.sym_encryption_key_len == 0:
        raise SuiteError(f"policy {policy.name} does not encrypt symmetrically")
    cipher = AesCbc(keys.encryption_key, keys.initialization_vector)
    return cipher.encrypt(plaintext)


@_timed("sym_decrypt")
def sym_decrypt(policy: SecurityPolicy, keys: SymmetricKeys, ciphertext: bytes) -> bytes:
    if policy.sym_encryption_key_len == 0:
        raise SuiteError(f"policy {policy.name} does not encrypt symmetrically")
    cipher = AesCbc(keys.encryption_key, keys.initialization_vector)
    return cipher.decrypt(ciphertext)
