"""Command-line interface.

Usage::

    python -m repro.cli study                 # run all sweeps + experiments
    python -m repro.cli study --store .study-store --scan-only
    python -m repro.cli analyze --store .study-store
    python -m repro.cli experiment fig3       # one experiment
    python -m repro.cli list                  # known experiments
    python -m repro.cli dataset out.jsonl     # anonymized dataset release
    python -m repro.cli policies              # print Table 1
    python -m repro.cli scan --live --targets targets.txt \
        --contact you@lab.example             # live lab scan (gated)

The full study builds ~1900 hosts and scans them eight times; the
first invocation also generates the RSA key cache (several minutes).
With ``--store DIR`` (or ``REPRO_STUDY_STORE=DIR``), the sweeps are
persisted content-addressed under DIR and every later invocation —
``study``, ``experiment``, ``dataset``, ``analyze`` — loads them in
well under a second instead of re-scanning.  ``analyze`` never scans:
it runs the analysis registry straight off a stored study.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.study import StudyConfig, default_study_result
from repro.scanner.executor import EXECUTOR_NAMES, resolve_executor

# Mirrors repro.analysis.pipeline.ANALYSIS_NAMES (pinned by a CLI
# test) so building the parser never imports the analysis stack.
ANALYZE_CHOICES = (
    "modes", "policies", "certs", "reuse", "access",
    "rights", "deficits", "breakdown", "longitudinal", "ipv6",
)


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=20200830,
        help="study seed (default: 20200830, the paper's last sweep date)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "scan workers per sweep (default: 1 for --executor serial, "
            "all CPUs for thread/process, 32 in-flight coroutines for "
            "async; >1 alone implies --executor process)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help=(
            "scan backend: serial (default), thread, process, or async "
            "(results are identical; only wall-clock time changes)"
        ),
    )
    _add_store(parser)


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "study store directory (default: $REPRO_STUDY_STORE if set); "
            "studies are persisted there content-addressed and loaded "
            "instead of re-scanned"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore any configured study store and always scan",
    )


def _resolve_store(args):
    from repro.dataset.store import default_store

    if getattr(args, "no_store", False):
        return None
    return default_store(args.store)


def _executor(args) -> tuple[str, int]:
    try:
        return resolve_executor(args.executor, args.workers)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")


def _study_result(args):
    executor, workers = _executor(args)
    store = _resolve_store(args)
    return default_study_result(args.seed, executor, workers, store=store)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Easing the Conscience with OPC UA' (IMC 2020)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the full study")
    _add_seed(study)
    study.add_argument(
        "--scan-only",
        action="store_true",
        help=(
            "run (or load) the sweeps and print their digests without "
            "regenerating the experiments — the store-building mode CI "
            "uses before fanning analyses out from the store"
        ),
    )
    study.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help=(
            "cut the address space into N zmap-style index-mod shards, "
            "scan them independently, and merge — byte-identical to an "
            "unsharded run; with --store, each finished shard is "
            "checkpointed so a killed campaign restarts from the last "
            "completed shard"
        ),
    )
    study.add_argument(
        "--shard",
        type=int,
        metavar="I",
        default=None,
        help=(
            "scan only shard I of --shards N and checkpoint it "
            "(requires --store; run the same command for every I, then "
            "`--shards N --resume` merges the checkpoints)"
        ),
    )
    study.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip shards whose store checkpoint validates (corrupt or "
            "missing checkpoints are rescanned); requires --shards and "
            "a store"
        ),
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_seed(experiment)

    commands.add_parser("list", help="list known experiments")

    analyze = commands.add_parser(
        "analyze",
        help="run the analysis registry from a stored study (no scan)",
    )
    _add_seed(analyze)
    analyze.add_argument(
        "--analysis",
        action="append",
        choices=ANALYZE_CHOICES,
        metavar="NAME",
        help=(
            "run only this analysis (repeatable; default: all of "
            + ", ".join(ANALYZE_CHOICES)
            + ")"
        ),
    )
    analyze.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the canonical JSON report to PATH",
    )

    dataset = commands.add_parser(
        "dataset", help="write the anonymized dataset release"
    )
    dataset.add_argument("path", help="output JSONL path")
    _add_seed(dataset)

    commands.add_parser("policies", help="print the Table 1 policy catalogue")

    scan = commands.add_parser(
        "scan",
        help=(
            "live scan of an explicit target list (authorized lab "
            "networks only; hard ethics gates, off by default), "
            "optionally recorded to — or replayed from — a capture "
            "corpus"
        ),
    )
    scan.add_argument(
        "--live",
        action="store_true",
        help=(
            "confirm that real packets should leave this machine; "
            "without it the command refuses to run"
        ),
    )
    scan.add_argument(
        "--targets",
        metavar="FILE",
        help=(
            "explicit target list, one IPv4[:port] per line "
            "(# comments allowed; hostnames rejected — no address "
            "generation or resolution of any kind); required unless "
            "--replay is given"
        ),
    )
    scan.add_argument(
        "--record",
        metavar="CORPUS",
        help=(
            "record every transport operation of this live scan into "
            "a replayable capture corpus at CORPUS (.gz → canonical "
            "gzip); the recording lane still runs behind the full "
            "ethics gate"
        ),
    )
    scan.add_argument(
        "--replay",
        metavar="CORPUS",
        help=(
            "replay a previously recorded corpus instead of scanning "
            "— no packets leave the machine, so neither --live nor "
            "--targets is needed; the scanner identity is rebuilt "
            "from the corpus metadata and every request is verified "
            "against the recording"
        ),
    )
    scan.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help=(
            "replay fan-out backend (replay records are identical on "
            "every backend; live scans always use async)"
        ),
    )
    scan.add_argument(
        "--profile",
        action="store_true",
        help=(
            "emit per-stage timing/allocation stats after the scan "
            "(cProfile top functions, per-stage task counters, and "
            "crypto-cache hit rates); records are unaffected"
        ),
    )
    scan.add_argument(
        "--contact",
        metavar="EMAIL",
        help=(
            "mandatory contact e-mail, embedded in the scanner "
            "certificate and application name so operators can reach "
            "you (paper Appendix A.1)"
        ),
    )
    scan.add_argument(
        "--contact-url",
        metavar="URL",
        default="https://scan-research.example.org",
        help="opt-out URL advertised in the scanner identity",
    )
    scan.add_argument(
        "--port", type=int, default=4840,
        help="default port for targets listed without one",
    )
    scan.add_argument(
        "--blocklist",
        metavar="FILE",
        help="opt-out CIDR blocklist, one block per line",
    )
    scan.add_argument(
        "--out",
        metavar="PATH",
        help="write the snapshot as JSONL (dataset schema)",
    )
    scan.add_argument(
        "--workers", type=int, default=8,
        help="in-flight connection bound (async executor semaphore)",
    )
    scan.add_argument(
        "--rate", type=float, default=10.0,
        help="global connection rate limit (connections/second)",
    )
    scan.add_argument(
        "--per-host-interval", type=float, default=1.0,
        help="minimum seconds between connections to one host",
    )
    scan.add_argument(
        "--connect-timeout", type=float, default=5.0,
        help="TCP connect timeout in seconds",
    )
    scan.add_argument(
        "--read-timeout", type=float, default=5.0,
        help="per-read timeout in seconds",
    )
    scan.add_argument(
        "--deadline", type=float, default=60.0,
        help="hard per-connection lifetime ceiling in seconds",
    )
    scan.add_argument(
        "--max-targets", type=int, default=None,
        help="refuse target lists larger than this (default 4096)",
    )
    scan.add_argument(
        "--traverse",
        action="store_true",
        help=(
            "walk accessible address spaces (budgeted, read-only); "
            "off by default for live runs"
        ),
    )
    scan.add_argument(
        "--key-bits",
        type=int,
        default=2048,
        choices=(512, 1024, 2048),
        help=(
            "scanner RSA key size (2048 for real runs; smaller only "
            "for loopback tests, where key generation speed matters)"
        ),
    )
    scan.add_argument(
        "--seed", type=int, default=20200830,
        help="seed for the scanner's deterministic nonce streams",
    )
    _add_store(scan)
    return parser


def cmd_study(args) -> int:
    if args.shard is not None and not args.shards:
        raise SystemExit("repro: error: --shard requires --shards N")
    if args.resume and not args.shards:
        raise SystemExit(
            "repro: error: --resume resumes a sharded run; pass --shards N"
        )
    if args.shards is not None:
        return _cmd_study_sharded(args)
    result = _study_result(args)
    return _report_study(args, result)


def _report_study(args, result) -> int:
    if args.scan_only:
        from repro.core.golden import study_digest, study_digests

        for date, digest in study_digests(result).items():
            print(f"{date}  {digest}")
        print(f"study digest: {study_digest(result)}")
        records = sum(len(s.records) for s in result.snapshots)
        print(f"{len(result.snapshots)} sweeps / {records} records")
        return 0
    exact = total = 0
    for experiment_id in EXPERIMENTS:
        report = run_experiment(experiment_id, result)
        print(report.render())
        print()
        exact += report.exact_matches()
        total += len(report.comparisons)
    print(f"reproduction summary: {exact}/{total} metrics match the paper")
    return 0


def _cmd_study_sharded(args) -> int:
    """``--shards N [--shard I] [--resume]``: scan, checkpoint, merge."""
    from repro.core.golden import combined_digest, sweep_digests
    from repro.scanner.shard import (
        ShardSpec,
        run_sharded_study,
        run_study_shard,
    )

    if args.shards < 1:
        raise SystemExit("repro: error: --shards must be >= 1")
    executor, workers = _executor(args)
    store = _resolve_store(args)
    config = StudyConfig(seed=args.seed, executor=executor, workers=workers)
    if args.shard is not None:
        if not 0 <= args.shard < args.shards:
            raise SystemExit(
                f"repro: error: --shard must be in [0, {args.shards})"
            )
        if store is None:
            raise SystemExit(
                "repro: error: scanning a single shard only makes sense "
                "with a checkpoint store; pass --store DIR (or set "
                "REPRO_STUDY_STORE)"
            )
        shard = ShardSpec(args.shard, args.shards)
        snapshots = run_study_shard(
            config, shard, store=store, resume=args.resume
        )
        digest = combined_digest(sweep_digests(snapshots))
        records = sum(len(s.records) for s in snapshots)
        print(
            f"shard {shard.label}: {len(snapshots)} sweeps / "
            f"{records} records"
        )
        print(f"shard digest: {digest}")
        return 0
    if args.resume and store is None:
        raise SystemExit(
            "repro: error: --resume needs the checkpoint store the "
            "interrupted run wrote; pass --store DIR (or set "
            "REPRO_STUDY_STORE)"
        )
    result = run_sharded_study(
        config, args.shards, store=store, resume=args.resume
    )
    return _report_study(args, result)


def cmd_experiment(args) -> int:
    result = _study_result(args)
    report = run_experiment(args.experiment_id, result)
    print(report.render())
    return 0


def cmd_list(args) -> int:
    for experiment_id, function in EXPERIMENTS.items():
        summary = (function.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:<12} {summary}")
    return 0


def cmd_analyze(args) -> int:
    """Analyses from a persisted store — never scans."""
    from repro.analysis.pipeline import run_analyses
    from repro.deployments.spec import build_default_spec
    from repro.reporting.summary import render_analysis_report

    store = _resolve_store(args)
    if store is None:
        raise SystemExit(
            "repro: error: analyze needs a study store; pass --store DIR "
            "or set REPRO_STUDY_STORE"
        )
    config = StudyConfig(seed=args.seed)
    spec = build_default_spec()
    snapshots = store.load(config, spec)
    if snapshots is None:
        raise SystemExit(
            f"repro: error: no stored study for seed {args.seed} under "
            f"{store.root}; build one with "
            f"`repro study --store {store.root} --scan-only`"
        )
    executor, workers = _executor(args)
    report = run_analyses(
        snapshots,
        spec,
        seed=args.seed,
        executor=executor,
        workers=workers,
        names=tuple(args.analysis) if args.analysis else None,
    )
    print(render_analysis_report(report))
    if args.json:
        payload = report.to_json_dict()
        payload["digest"] = report.digest()
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_dataset(args) -> int:
    from repro.dataset import AnonymizationMap, anonymize_snapshot
    from repro.dataset.io import write_snapshots

    result = _study_result(args)
    mapping = AnonymizationMap()
    released = [
        anonymize_snapshot(snapshot, mapping) for snapshot in result.snapshots
    ]
    write_snapshots(args.path, released)
    records = sum(len(s.records) for s in released)
    print(f"wrote {len(released)} snapshots / {records} records to {args.path}")
    return 0


def _scanner_identity(
    seed: int,
    contact: str,
    contact_url: str,
    key_bits: int,
    not_before=None,
):
    """Build the scanner identity used by the live and replay lanes.

    Everything about it is deterministic given the arguments —
    including ``not_before``, which defaults to *today* for live scans
    and is recorded in a capture corpus so replay reconstructs the
    byte-identical certificate on any later day.
    """
    import os
    from datetime import datetime, timezone
    from pathlib import Path

    from repro.client import ClientIdentity
    from repro.deployments.keyfactory import KeyFactory
    from repro.scanner.campaign import ScannerIdentity
    from repro.util.rng import DeterministicRng
    from repro.x509.builder import make_self_signed

    contact = (contact or "").strip()
    if "@" not in contact:
        raise SystemExit(
            "repro: error: --contact EMAIL is mandatory for live scans "
            "(it is embedded in the scanner certificate so operators "
            "can reach you)"
        )
    if not_before is None:
        not_before = datetime.now(timezone.utc).replace(
            hour=0, minute=0, second=0, microsecond=0
        )
    cache = os.environ.get("REPRO_KEYCACHE")
    factory = KeyFactory(seed, cache_dir=Path(cache) if cache else None)
    keys = factory.key_for(f"live-scanner-{key_bits}", key_bits)
    rng = DeterministicRng(seed, "live-scanner")
    certificate = make_self_signed(
        keys,
        common_name="research-scanner",
        application_uri="urn:repro:live-scanner",
        not_before=not_before,
        hash_name="sha256",
        rng=rng.substream("cert"),
        organization=f"Research scanner (contact: {contact})",
    )
    client = ClientIdentity(
        application_uri="urn:repro:live-scanner",
        application_name=(
            f"Research scanner (contact: {contact}; "
            f"opt out: {contact_url})"
        ),
        certificate=certificate,
        private_key=keys.private,
    )
    return ScannerIdentity(client, contact_url=contact_url), not_before


def _print_scan_summary(snapshot) -> None:
    from repro.util.ipaddr import format_ipv4

    opcua = sum(1 for r in snapshot.records if r.is_opcua)
    accessible = sum(
        1 for r in snapshot.records if r.anonymous_accessible()
    )
    print(
        f"{snapshot.probed} scanned / {snapshot.excluded} blocklisted / "
        f"{snapshot.port_open} tcp open / {opcua} OPC UA / "
        f"{accessible} anonymously accessible"
    )
    for record in snapshot.records:
        if record.tcp_open and record.is_opcua:
            status = "opc-ua"
            if record.anonymous_accessible():
                status += " anonymous-access"
        elif record.tcp_open:
            status = record.error or "open"
        else:
            status = record.error or "closed"
        if record.error_category:
            status += f" [{record.error_category}]"
        print(f"  {format_ipv4(record.ip)}:{record.port}  {status}")


def _write_snapshot_out(args, snapshot) -> None:
    if args.out:
        from repro.dataset.io import write_snapshots

        write_snapshots(args.out, [snapshot])
        print(f"wrote {args.out}")


def _profile_scan(args):
    """``--profile`` plumbing shared by the live and replay lanes.

    Returns ``(wrap_executor, session, emit)``: ``wrap_executor``
    decorates the lane's executor with per-stage counters,
    ``session`` is the :class:`~repro.util.profiling.ProfileSession`
    context manager around the campaign (or ``None`` when profiling is
    off), and ``emit`` prints the report after the summary.
    """
    import contextlib

    if not getattr(args, "profile", False):
        return (lambda executor: executor), contextlib.nullcontext(), None

    from repro.crypto.cache import cache_stats
    from repro.scanner.executor import ProfiledScanExecutor
    from repro.util.profiling import ProfileSession, StageStats

    stats = StageStats()
    session = ProfileSession()

    def emit() -> None:
        print()
        print("--- profile: per-stage counters ---")
        print(stats.render())
        print()
        print("--- profile: crypto caches ---")
        for entry in cache_stats():
            print(
                f"{entry['name']:<18} size={entry['size']:<5} "
                f"hits={entry['hits']:<7} misses={entry['misses']}"
            )
        print()
        print("--- profile: hot functions (cProfile) ---")
        print(session.stats_text())

    return (
        lambda executor: ProfiledScanExecutor(executor, stats),
        session,
        emit,
    )


def cmd_replay(args) -> int:
    """Replay lane: recorded corpus in, byte-identical records out."""
    from pathlib import Path

    from repro.dataset.store import StoreIntegrityError
    from repro.scanner.campaign import ReplayScanCampaign
    from repro.transport.capture import CaptureFormatError, read_corpus
    from repro.transport.replay import ReplayError
    from repro.util.rng import DeterministicRng
    from repro.util.simtime import parse_utc

    source = Path(args.replay)
    try:
        if source.exists():
            corpus = read_corpus(source)
        else:
            store = _resolve_store(args)
            if store is None:
                raise SystemExit(
                    f"repro: error: no corpus file at {source} "
                    "(pass --store DIR to replay a stored corpus key)"
                )
            try:
                corpus = store.load_corpus(args.replay)
            except KeyError as exc:
                raise SystemExit(f"repro: error: {exc.args[0]}")
    except (CaptureFormatError, StoreIntegrityError) as exc:
        raise SystemExit(f"repro: error: corpus: {exc}")

    meta = corpus.meta
    seed = meta.get("seed", args.seed)
    contact = meta.get("contact") or args.contact
    if not contact or "@" not in contact:
        raise SystemExit(
            "repro: error: this corpus does not carry the scanner "
            "contact it was recorded with (it was recorded through "
            "the library API, not `scan --record`); pass --contact "
            "with the recording's contact e-mail so the identity — "
            "and with it every request byte — can be rebuilt for "
            "strict replay verification"
        )
    not_before = meta.get("not_before")
    identity, _ = _scanner_identity(
        seed,
        contact,
        meta.get("contact_url", args.contact_url),
        meta.get("key_bits", args.key_bits),
        not_before=parse_utc(not_before) if not_before else None,
    )
    from repro.scanner.executor import build_executor

    # Replay grabs are pure computation, so serial is the sensible
    # default; any backend produces identical records.
    name = args.executor or "serial"
    wrap_executor, session, emit_profile = _profile_scan(args)
    campaign = ReplayScanCampaign(
        corpus,
        identity,
        DeterministicRng(seed, meta.get("rng_namespace", "live-scan")),
        executor=wrap_executor(
            build_executor(
                name, 1 if name == "serial" else max(args.workers, 1)
            )
        ),
    )
    from repro.scanner.executor import ScanExecutorError

    try:
        with session:
            snapshot = campaign.run()
    except ReplayError as exc:
        raise SystemExit(f"repro: replay: {exc}")
    except ScanExecutorError as exc:
        # Pooled backends wrap worker failures; a replay divergence
        # inside a worker must still surface as the friendly replay
        # message, not a traceback.
        if isinstance(exc.cause, ReplayError):
            raise SystemExit(f"repro: replay: {exc.cause}")
        raise
    print(f"replayed {len(corpus.targets)} captured targets "
          f"from {args.replay}")
    _print_scan_summary(snapshot)
    if emit_profile is not None:
        emit_profile()
    _write_snapshot_out(args, snapshot)
    return 0


def cmd_scan(args) -> int:
    """Live lane: explicit targets, hard ethics gates, real sockets."""
    from repro.netsim.blocklist import Blocklist
    from repro.scanner.campaign import (
        LiveScanCampaign,
        LiveScanConfig,
        load_targets,
    )
    from repro.scanner.ethics import (
        DEFAULT_MAX_LIVE_TARGETS,
        EthicsViolation,
        LiveScanGate,
    )
    from repro.scanner.limits import ScanRateLimiter
    from repro.util.rng import DeterministicRng
    from repro.util.simtime import format_utc

    if args.replay:
        if args.live or args.record or args.targets:
            raise SystemExit(
                "repro: error: --replay re-runs recorded traffic (the "
                "corpus is the target list) and cannot be combined "
                "with --live, --record, or --targets"
            )
        return cmd_replay(args)
    if not args.live:
        raise SystemExit(
            "repro: error: `repro scan` sends real packets and only "
            "runs with an explicit --live flag (the simulated study "
            "is `repro study`; a recorded corpus replays with "
            "--replay CORPUS)"
        )
    if not args.targets:
        raise SystemExit(
            "repro: error: --targets FILE is required for live scans"
        )
    try:
        targets = load_targets(args.targets, default_port=args.port)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: error: {exc}")
    blocklist = Blocklist()
    if args.blocklist:
        try:
            with open(args.blocklist) as handle:
                for line in handle:
                    block = line.split("#", 1)[0].strip()
                    if block:
                        blocklist.add(block)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro: error: blocklist: {exc}")

    identity, not_before = _scanner_identity(
        args.seed, args.contact, args.contact_url, args.key_bits
    )
    gate = LiveScanGate(
        blocklist=blocklist,
        max_targets=(
            DEFAULT_MAX_LIVE_TARGETS
            if args.max_targets is None
            else args.max_targets
        ),
    )
    config = LiveScanConfig(
        workers=args.workers,
        connect_timeout_s=args.connect_timeout,
        read_timeout_s=args.read_timeout,
        connection_deadline_s=args.deadline,
        traverse=args.traverse,
    )
    try:
        limiter = ScanRateLimiter(args.rate, args.per_host_interval)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    recorder = None
    if args.record:
        from repro.transport.capture import CaptureRecorder

        # Everything replay needs to rebuild this exact scanner:
        # the corpus is self-describing, so `repro scan --replay`
        # works on any machine, any day.
        recorder = CaptureRecorder(
            {
                "seed": args.seed,
                "rng_namespace": "live-scan",
                "contact": (args.contact or "").strip(),
                "contact_url": args.contact_url,
                "key_bits": args.key_bits,
                "not_before": format_utc(not_before),
            }
        )
    wrap_executor, session, emit_profile = _profile_scan(args)
    executor = None
    if args.profile:
        # Build the live lane's default backend explicitly so the
        # profiling wrapper can decorate it.
        from repro.scanner.executor import build_executor

        executor = wrap_executor(
            build_executor("async", max(config.workers, 1))
        )
    try:
        campaign = LiveScanCampaign(
            identity,
            DeterministicRng(args.seed, "live-scan"),
            gate=gate,
            config=config,
            limiter=limiter,
            recorder=recorder,
            executor=executor,
        )
        with session:
            snapshot = campaign.run(targets)
    except EthicsViolation as exc:
        raise SystemExit(f"repro: ethics gate: {exc}")

    _print_scan_summary(snapshot)
    if emit_profile is not None:
        emit_profile()
    if recorder is not None:
        from repro.transport.capture import write_corpus

        corpus = recorder.corpus()
        write_corpus(args.record, corpus)
        print(f"recorded {len(corpus.targets)} targets to {args.record}")
        store = _resolve_store(args)
        if store is not None:
            key = store.save_corpus(corpus)
            print(f"stored corpus {key} under {store.root}")
    _write_snapshot_out(args, snapshot)
    return 0


def cmd_policies(args) -> int:
    from repro.reporting.tables import render_table
    from repro.secure.policies import ALL_POLICIES

    rows = [
        [
            policy.name,
            policy.short_label,
            "/".join(policy.certificate_hash) or "-",
            f"[{policy.min_key_bits}; {policy.max_key_bits}]"
            if policy.provides_security
            else "-",
            "deprecated"
            if policy.is_deprecated
            else ("insecure" if not policy.provides_security else "current"),
        ]
        for policy in ALL_POLICIES
    ]
    print(
        render_table(
            ["Policy", "A", "Cert. hash", "Key bits", "Status"],
            rows,
            title="OPC UA security policies (paper Table 1)",
        )
    )
    return 0


_COMMANDS = {
    "study": cmd_study,
    "experiment": cmd_experiment,
    "list": cmd_list,
    "analyze": cmd_analyze,
    "dataset": cmd_dataset,
    "policies": cmd_policies,
    "scan": cmd_scan,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
