"""Golden-harness fixtures: one serial tiny study per session.

The serial run is both the committed-digest subject and the reference
every parallel backend is compared against, so it is computed once and
shared.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.golden import run_tiny_study

DIGEST_PATH = Path(__file__).resolve().parent / "tiny_study.digest.json"


@pytest.fixture(scope="session")
def committed_digests() -> dict:
    return json.loads(DIGEST_PATH.read_text())


@pytest.fixture(scope="session")
def serial_tiny_result():
    return run_tiny_study("serial", 1)
