"""Textbook RSA keys with CRT private operations.

Padding lives in :mod:`repro.crypto.pkcs1`; this module only provides
key generation and the raw modular-exponentiation primitives.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime

DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, message: int) -> int:
        if not 0 <= message < self.n:
            raise ValueError("message representative out of range")
        return pow(message, self.e, self.n)

    # Signature verification is the same operation as encryption.
    raw_verify = raw_encrypt


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    e: int
    d: int
    p: int
    q: int

    def __post_init__(self):
        # Precompute CRT exponents once; frozen dataclass, so use
        # object.__setattr__ for the cached values.
        object.__setattr__(self, "_dp", self.d % (self.p - 1))
        object.__setattr__(self, "_dq", self.d % (self.q - 1))
        object.__setattr__(self, "_qinv", pow(self.q, -1, self.p))

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def raw_decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.n:
            raise ValueError("ciphertext representative out of range")
        m1 = pow(ciphertext, self._dp, self.p)
        m2 = pow(ciphertext, self._dq, self.q)
        h = (self._qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    # Signing is the same operation as decryption.
    raw_sign = raw_decrypt


@dataclass(frozen=True)
class RsaKeyPair:
    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public_key()


def generate_rsa_key(
    bits: int, rng: random.Random, public_exponent: int = DEFAULT_PUBLIC_EXPONENT
) -> RsaKeyPair:
    """Generate an RSA key whose modulus has exactly ``bits`` bits."""
    if bits % 2:
        raise ValueError("modulus size must be even")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(public_exponent, phi) != 1:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(public_exponent, -1, phi)
        return RsaKeyPair(RsaPrivateKey(n=n, e=public_exponent, d=d, p=p, q=q))
