"""Replay-corpus fixtures.

The corpus itself is committed (``corpus.jsonl.gz``) — these fixtures
only parse it and load the pinned digests.  The scanner identity is
rebuilt from the session ``rsa_1024`` key (same derivation the
regeneration script uses), so replay's strict write verification
cross-checks the whole client stack against the recording.
"""

from __future__ import annotations

import json

import pytest

from repro.transport.capture import read_corpus

from tests.replay.fixture import CORPUS_PATH, DIGEST_PATH
from tests.replay.hostile_fixture import (
    HOSTILE_CORPUS_PATH,
    HOSTILE_DIGEST_PATH,
)


@pytest.fixture(scope="session")
def committed_corpus():
    return read_corpus(CORPUS_PATH)


@pytest.fixture(scope="session")
def committed_replay_digests() -> dict:
    return json.loads(DIGEST_PATH.read_text())


@pytest.fixture(scope="session")
def committed_hostile_corpus():
    return read_corpus(HOSTILE_CORPUS_PATH)


@pytest.fixture(scope="session")
def committed_hostile_digests() -> dict:
    return json.loads(HOSTILE_DIGEST_PATH.read_text())
