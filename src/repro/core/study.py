"""End-to-end study execution.

The pipeline mirrors the paper's §4 methodology:

1. build the ground-truth population (spec → hosts → servers);
2. for each of the eight sweep dates, assemble the Internet of that
   week and run a scan campaign (port sweep → per-host grab →
   follow-references from 2020-05-04 on);
3. keep all snapshots for the longitudinal analysis; the last sweep
   additionally runs the address-space traversal feeding Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client import ClientIdentity
from repro.core.config import StudyConfig
from repro.deployments.evolution import (
    DISCOVERY_COUNTS,
    SWEEP_DATES,
    StudyTimeline,
)
from repro.deployments.keyfactory import KeyFactory
from repro.deployments.population import BuiltHost, PopulationBuilder
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimHost, SimNetwork
from repro.scanner.campaign import ScanCampaign, ScannerIdentity
from repro.scanner.executor import build_executor
from repro.scanner.records import MeasurementSnapshot
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed


class JunkTcpService:
    """A non-OPC UA service squatting on TCP/4840 (HTTP-ish banner)."""

    closed = False

    def receive(self, data: bytes) -> bytes:
        return b"HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n"


@dataclass
class StudyResult:
    """Everything a downstream analysis or benchmark needs."""

    config: StudyConfig
    spec: PopulationSpec
    hosts: list[BuiltHost]
    timeline: StudyTimeline
    snapshots: list[MeasurementSnapshot] = field(default_factory=list)

    @property
    def final_snapshot(self) -> MeasurementSnapshot:
        return self.snapshots[-1]

    def final_servers(self):
        return self.final_snapshot.servers()


class Study:
    """One reproducible end-to-end study run.

    ``spec`` overrides the population (default:
    :func:`~repro.deployments.spec.build_default_spec`).  The golden
    test harness passes a tiny row subset so a full eight-sweep study
    finishes in seconds while exercising every pipeline stage.
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        spec: PopulationSpec | None = None,
    ):
        self.config = config or StudyConfig()
        self._spec = spec
        self._rng = DeterministicRng(self.config.seed, "study")
        self._key_factory = KeyFactory(self.config.seed)

    def scanner_identity(self) -> ScannerIdentity:
        """The research scanner's identity (contact info included,
        following the paper's ethics appendix)."""
        rng = self._rng.substream("scanner")
        # Same derivation the seed used inline (namespace
        # "study/scanner/key"), now routed through the shared key
        # factory so the disk cache — committed for CI — serves it and
        # forked scan workers inherit it in memory.
        keys = self._key_factory.key_for_namespace(
            rng.substream("key").namespace, 2048
        )
        certificate = make_self_signed(
            keys,
            common_name="research-scanner",
            application_uri="urn:repro:research-scanner",
            not_before=parse_utc("2020-01-01"),
            hash_name="sha256",
            rng=rng.substream("cert"),
            organization="Internet Measurement Research",
        )
        identity = ClientIdentity(
            application_uri="urn:repro:research-scanner",
            application_name=(
                "Research scanner - opt out: https://scan-research.example.org"
            ),
            certificate=certificate,
            private_key=keys.private,
        )
        return ScannerIdentity(identity)

    def run(self) -> StudyResult:
        spec = self._spec or build_default_spec()
        builder = PopulationBuilder(
            spec, seed=self.config.seed, key_factory=self._key_factory
        )
        hosts = builder.build_hosts()
        timeline = StudyTimeline(
            builder,
            hosts,
            seed=self.config.seed,
            discovery_counts=self._discovery_counts(),
        )
        identity = self.scanner_identity()
        result = StudyResult(
            config=self.config, spec=spec, hosts=hosts, timeline=timeline
        )
        executor = build_executor(self.config.executor, self.config.workers)

        for sweep_index, date in enumerate(SWEEP_DATES):
            network = timeline.network_for_sweep(sweep_index)
            self._add_noise_hosts(network, sweep_index)
            campaign = ScanCampaign(
                network,
                identity,
                self._rng.substream(f"campaign-{sweep_index}"),
                executor=executor,
            )
            is_last = sweep_index == len(SWEEP_DATES) - 1
            snapshot = campaign.run_sweep(
                label=date,
                follow_references=(
                    sweep_index >= self.config.follow_references_from_sweep
                ),
                extra_candidates=self.config.extra_sweep_candidates,
                traverse=self.config.traverse_all_sweeps or is_last,
                batch_size=self.config.probe_batch_size,
            )
            result.snapshots.append(snapshot)
        return result

    def _discovery_counts(self) -> tuple[int, ...] | None:
        """Weekly discovery-fleet sizes, scaled by the config.

        ``None`` (scale 1.0) keeps the timeline's paper-accurate
        defaults — and keeps full-study RNG draws untouched.
        """
        scale = self.config.discovery_scale
        if scale == 1.0:
            return None
        return tuple(max(1, round(count * scale)) for count in DISCOVERY_COUNTS)

    def _add_noise_hosts(self, network: SimNetwork, sweep_index: int) -> None:
        """Non-OPC UA responders on 4840 (exercises the 0.5 ‰ path)."""
        rng = self._rng.substream(f"noise-{sweep_index}")
        added = 0
        while added < self.config.noise_hosts:
            address = rng.randrange(2**32)
            if network.host(address) is not None:
                continue
            host = SimHost(address=address, asn=None)
            host.listen(4840, JunkTcpService)
            network.add_host(host)
            added += 1


# --- shared cached run --------------------------------------------------------

_RESULT_CACHE: dict[int, StudyResult] = {}


def default_study_result(
    seed: int = 20200830, executor: str = "serial", workers: int = 1
) -> StudyResult:
    """The cached full-study result shared by tests/benchmarks/examples.

    The cache is keyed by seed alone: snapshots are bit-identical
    across executor backends, so whichever backend computes the result
    first serves every later caller.
    """
    if seed not in _RESULT_CACHE:
        _RESULT_CACHE[seed] = Study(
            StudyConfig(seed=seed, executor=executor, workers=workers)
        ).run()
    return _RESULT_CACHE[seed]
