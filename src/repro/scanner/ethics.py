"""Responsible-disclosure workflow (paper Appendix A).

The authors searched accessible address spaces for operator contact
information (e.g. nodes containing e-mail addresses), notified the
operators of 50 systems, and tracked the (sparse) responses: two
replies, and exactly one system that subsequently implemented access
control.  This module implements that workflow over scan records:

* :func:`find_contact_addresses` — e-mail discovery in readable node
  values;
* :class:`NotificationCampaign` — outreach bookkeeping with
  per-operator state;
* :func:`measure_remediation` — compare a later snapshot against the
  notified set to see who actually fixed their configuration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.scanner.records import MeasurementSnapshot

_EMAIL_RE = re.compile(
    r"[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}"
)


def find_contact_addresses(values: list[str]) -> list[str]:
    """Extract e-mail addresses from readable node values."""
    found = []
    for value in values:
        if not isinstance(value, str):
            continue
        for match in _EMAIL_RE.findall(value):
            if match not in found:
                found.append(match)
    return found


@dataclass
class Notification:
    """One outreach attempt to one operator."""

    ip: int
    port: int
    contact: str
    sent_on: str
    channel: str = "email"
    replied: bool = False
    remediated: bool = False


@dataclass
class NotificationCampaign:
    """Tracks which operators of accessible systems were notified."""

    notifications: list[Notification] = field(default_factory=list)

    def notify_from_snapshot(
        self,
        snapshot: MeasurementSnapshot,
        contact_values: dict[tuple[int, int], list[str]],
    ) -> int:
        """Create notifications for accessible hosts with contacts.

        ``contact_values`` maps (ip, port) to readable string values
        collected during traversal; only hosts whose values contain an
        e-mail address can be contacted (the paper reached 50 of 493).
        """
        sent = 0
        already = {(n.ip, n.port) for n in self.notifications}
        for record in snapshot.records:
            if not record.anonymous_accessible():
                continue
            key = (record.ip, record.port)
            if key in already:
                continue
            contacts = find_contact_addresses(contact_values.get(key, []))
            if not contacts:
                continue
            self.notifications.append(
                Notification(
                    ip=record.ip,
                    port=record.port,
                    contact=contacts[0],
                    sent_on=snapshot.date,
                )
            )
            sent += 1
        return sent

    @property
    def contacted_hosts(self) -> set[tuple[int, int]]:
        return {(n.ip, n.port) for n in self.notifications}

    def record_reply(self, ip: int, port: int) -> None:
        for notification in self.notifications:
            if (notification.ip, notification.port) == (ip, port):
                notification.replied = True
                return
        raise KeyError(f"no notification for {(ip, port)}")

    @property
    def reply_count(self) -> int:
        return sum(1 for n in self.notifications if n.replied)


def measure_remediation(
    campaign: NotificationCampaign, later_snapshot: MeasurementSnapshot
) -> dict[str, int]:
    """Did notified operators fix their systems by ``later_snapshot``?

    A system counts as remediated when it is still online but no
    longer anonymously accessible; offline systems are reported
    separately (the paper found all but three still online, and one
    system with access control added).
    """
    by_key = {(r.ip, r.port): r for r in later_snapshot.records}
    remediated = 0
    still_open = 0
    offline = 0
    for notification in campaign.notifications:
        record = by_key.get((notification.ip, notification.port))
        if record is None or not record.is_opcua:
            offline += 1
            continue
        if record.anonymous_accessible():
            still_open += 1
        else:
            remediated += 1
            notification.remediated = True
    return {
        "notified": len(campaign.notifications),
        "remediated": remediated,
        "still_open": still_open,
        "offline": offline,
    }
