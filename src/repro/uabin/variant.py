"""Variant and DataValue encodings.

A Variant is OPC UA's tagged union: one byte selects the built-in
type, bit 7 marks arrays.  DataValue wraps a Variant with status code
and timestamps; the Read service returns one per attribute and the
scanner's address-space traversal consumes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import datetime

from repro.uabin import builtin
from repro.uabin.statuscodes import StatusCode
from repro.util.binary import BinaryReader, BinaryWriter


class VariantType(enum.IntEnum):
    NULL = 0
    BOOLEAN = 1
    SBYTE = 2
    BYTE = 3
    INT16 = 4
    UINT16 = 5
    INT32 = 6
    UINT32 = 7
    INT64 = 8
    UINT64 = 9
    FLOAT = 10
    DOUBLE = 11
    STRING = 12
    DATETIME = 13
    GUID = 14
    BYTESTRING = 15
    XMLELEMENT = 16
    NODEID = 17
    EXPANDEDNODEID = 18
    STATUSCODE = 19
    QUALIFIEDNAME = 20
    LOCALIZEDTEXT = 21
    EXTENSIONOBJECT = 22
    DATAVALUE = 23
    VARIANT = 24
    DIAGNOSTICINFO = 25


_CODEC_NAMES = {
    VariantType.BOOLEAN: "boolean",
    VariantType.SBYTE: "sbyte",
    VariantType.BYTE: "byte",
    VariantType.INT16: "int16",
    VariantType.UINT16: "uint16",
    VariantType.INT32: "int32",
    VariantType.UINT32: "uint32",
    VariantType.INT64: "int64",
    VariantType.UINT64: "uint64",
    VariantType.FLOAT: "float",
    VariantType.DOUBLE: "double",
    VariantType.STRING: "string",
    VariantType.DATETIME: "datetime",
    VariantType.GUID: "guid",
    VariantType.BYTESTRING: "bytestring",
    VariantType.XMLELEMENT: "string",
    VariantType.NODEID: "nodeid",
    VariantType.EXPANDEDNODEID: "expandednodeid",
    VariantType.STATUSCODE: "statuscode",
    VariantType.QUALIFIEDNAME: "qualifiedname",
    VariantType.LOCALIZEDTEXT: "localizedtext",
    VariantType.DIAGNOSTICINFO: "diagnosticinfo",
}

_ARRAY_BIT = 0x80
_DIMENSIONS_BIT = 0x40


def infer_variant_type(value) -> VariantType:
    """Best-effort mapping from a Python value to a variant type."""
    from repro.uabin.nodeid import ExpandedNodeId, NodeId

    if value is None:
        return VariantType.NULL
    if isinstance(value, bool):
        return VariantType.BOOLEAN
    if isinstance(value, int):
        return VariantType.INT64
    if isinstance(value, float):
        return VariantType.DOUBLE
    if isinstance(value, str):
        return VariantType.STRING
    if isinstance(value, bytes):
        return VariantType.BYTESTRING
    if isinstance(value, datetime):
        return VariantType.DATETIME
    if isinstance(value, StatusCode):
        return VariantType.STATUSCODE
    if isinstance(value, builtin.QualifiedName):
        return VariantType.QUALIFIEDNAME
    if isinstance(value, builtin.LocalizedText):
        return VariantType.LOCALIZEDTEXT
    if isinstance(value, ExpandedNodeId):
        return VariantType.EXPANDEDNODEID
    if isinstance(value, NodeId):
        return VariantType.NODEID
    raise TypeError(f"cannot infer variant type for {type(value).__name__}")


@dataclass(frozen=True)
class Variant:
    """A typed value; ``value`` is a list when ``is_array`` is true."""

    value: object = None
    variant_type: VariantType | None = None
    is_array: bool = False

    def resolved_type(self) -> VariantType:
        if self.variant_type is not None:
            return self.variant_type
        if self.is_array:
            sample = self.value[0] if self.value else None
            return infer_variant_type(sample)
        return infer_variant_type(self.value)

    def encode(self, writer: BinaryWriter) -> None:
        vtype = self.resolved_type()
        if vtype == VariantType.NULL:
            writer.write_uint8(0)
            return
        mask = int(vtype)
        if self.is_array:
            mask |= _ARRAY_BIT
        writer.write_uint8(mask)
        codec = _CODEC_NAMES[vtype]
        if self.is_array:
            builtin.write_array(writer, codec, self.value)
        else:
            builtin.write_value(writer, codec, self.value)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "Variant":
        mask = reader.read_uint8()
        if mask == 0:
            return cls(None, VariantType.NULL)
        vtype = VariantType(mask & 0x3F)
        is_array = bool(mask & _ARRAY_BIT)
        codec = _CODEC_NAMES.get(vtype)
        if codec is None:
            raise ValueError(f"unsupported variant type: {vtype!r}")
        if is_array:
            value = builtin.read_array(reader, codec)
        else:
            value = builtin.read_value(reader, codec)
        if mask & _DIMENSIONS_BIT:
            builtin.read_array(reader, "int32")  # dimensions, ignored
        return cls(value, vtype, is_array)


@dataclass(frozen=True)
class DataValue:
    """Variant plus quality and timestamps (OPC 10000-6 §5.2.2.17)."""

    value: Variant | None = None
    status: StatusCode | None = None
    source_timestamp: datetime | None = None
    server_timestamp: datetime | None = None

    _VALUE_BIT = 0x01
    _STATUS_BIT = 0x02
    _SOURCE_TS_BIT = 0x04
    _SERVER_TS_BIT = 0x08

    def encode(self, writer: BinaryWriter) -> None:
        mask = 0
        if self.value is not None:
            mask |= self._VALUE_BIT
        if self.status is not None:
            mask |= self._STATUS_BIT
        if self.source_timestamp is not None:
            mask |= self._SOURCE_TS_BIT
        if self.server_timestamp is not None:
            mask |= self._SERVER_TS_BIT
        writer.write_uint8(mask)
        if self.value is not None:
            self.value.encode(writer)
        if self.status is not None:
            builtin.write_statuscode(writer, self.status)
        if self.source_timestamp is not None:
            builtin.write_datetime(writer, self.source_timestamp)
        if self.server_timestamp is not None:
            builtin.write_datetime(writer, self.server_timestamp)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "DataValue":
        mask = reader.read_uint8()
        value = Variant.decode(reader) if mask & cls._VALUE_BIT else None
        status = (
            builtin.read_statuscode(reader) if mask & cls._STATUS_BIT else None
        )
        source_ts = (
            builtin.read_datetime(reader) if mask & cls._SOURCE_TS_BIT else None
        )
        server_ts = (
            builtin.read_datetime(reader) if mask & cls._SERVER_TS_BIT else None
        )
        return cls(value, status, source_ts, server_ts)
