"""Campaign orchestration: weekly sweeps + follow-references.

A campaign binds the scanner identity (self-signed certificate with
contact information, as the paper's ethics appendix describes), the
opt-out blocklist, and the per-host traversal budget; ``run_sweep``
produces one dated :class:`MeasurementSnapshot`.

From 2020-05-04 on, the paper also connected to host/port combinations
listed as endpoints on already-scanned servers ("follow references",
visible in Figure 2); ``follow_references=True`` reproduces that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.client import ClientIdentity
from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimNetwork
from repro.netsim.tcpscan import sweep_port
from repro.scanner.grabber import grab_host
from repro.scanner.limits import TraversalBudget
from repro.scanner.records import HostRecord, MeasurementSnapshot
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import format_utc

OPCUA_PORT = 4840


@dataclass(frozen=True)
class ScannerIdentity:
    """The measurement client's identity (paper Appendix A.2)."""

    client_identity: ClientIdentity
    contact_url: str = "https://scan-research.example.org"
    reverse_dns: str = "research-scanner.example.org"


class ScanCampaign:
    """Weekly measurement campaign over a simulated Internet."""

    def __init__(
        self,
        network: SimNetwork,
        identity: ScannerIdentity,
        rng: DeterministicRng,
        blocklist: Blocklist | None = None,
        budget: TraversalBudget | None = None,
        port: int = OPCUA_PORT,
    ):
        self._network = network
        self._identity = identity
        self._rng = rng
        self._blocklist = blocklist or Blocklist()
        self._budget_template = budget or TraversalBudget()
        self._port = port

    def run_sweep(
        self,
        label: str | None = None,
        follow_references: bool = False,
        extra_candidates: int = 0,
        traverse: bool = True,
    ) -> MeasurementSnapshot:
        """One full sweep: port scan, grab every responder, follow refs."""
        date = label or format_utc(self._network.clock.now())[:10]
        sweep_rng = self._rng.substream(f"sweep-{date}")
        scan = sweep_port(
            self._network,
            self._port,
            sweep_rng,
            blocklist=self._blocklist,
            extra_candidates=extra_candidates,
        )
        snapshot = MeasurementSnapshot(
            date=date,
            probed=scan.probed,
            port_open=scan.open_count,
            excluded=scan.excluded,
        )
        grabbed: set[tuple[int, int]] = set()
        for address in scan.open_addresses:
            record = self._grab(address, self._port, sweep_rng, False, traverse)
            snapshot.records.append(record)
            grabbed.add((address, self._port))

        if follow_references:
            for target in self._referenced_targets(snapshot.records):
                if target in grabbed:
                    continue
                address, port = target
                if address in self._blocklist:
                    continue
                record = self._grab(address, port, sweep_rng, True, traverse)
                if record.tcp_open:
                    snapshot.records.append(record)
                grabbed.add(target)
        return snapshot

    def _grab(
        self,
        address: int,
        port: int,
        rng: DeterministicRng,
        via_reference: bool,
        traverse: bool = True,
    ) -> HostRecord:
        budget = replace(self._budget_template)
        return grab_host(
            self._network,
            address,
            port,
            self._identity.client_identity,
            rng,
            budget=budget,
            via_reference=via_reference,
            traverse=traverse,
        )

    def _referenced_targets(self, records) -> list[tuple[int, int]]:
        """host/port combinations named in scanned endpoint URLs."""
        targets = []
        seen = set()
        for record in records:
            for endpoint in record.endpoints:
                parsed = parse_endpoint_url(endpoint.endpoint_url)
                if parsed is None:
                    continue
                if parsed == (record.ip, record.port):
                    continue
                if parsed not in seen:
                    seen.add(parsed)
                    targets.append(parsed)
        return targets


def parse_endpoint_url(url: str | None) -> tuple[int, int] | None:
    """Parse ``opc.tcp://a.b.c.d:port/...`` into (address, port)."""
    if not url or not url.startswith("opc.tcp://"):
        return None
    rest = url[len("opc.tcp://") :]
    host_port = rest.split("/", 1)[0]
    host, _, port_text = host_port.partition(":")
    try:
        address = parse_ipv4(host)
    except ValueError:
        return None
    if not port_text:
        return address, OPCUA_PORT
    try:
        port = int(port_text)
    except ValueError:
        return None
    if not 0 < port < 65536:
        return None
    return address, port
