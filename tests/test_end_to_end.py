"""End-to-end pipeline test on a reduced population.

Uses a *prefix* of the default spec so host indices (and therefore
cached RSA keys) align with the full study's key cache — the test
stays fast after the cache exists and still exercises population
build → network install → sweep → grab → analysis.
"""

import pytest

from repro.analysis.access import analyze_access_control
from repro.analysis.deficits import analyze_deficits
from repro.analysis.modes import analyze_security_modes
from repro.analysis.reuse import analyze_certificate_reuse
from repro.core.study import Study, StudyConfig
from repro.deployments.population import PopulationBuilder, install_hosts
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimNetwork
from repro.scanner.campaign import ScanCampaign
from repro.util.simtime import SimClock, parse_utc

pytestmark = pytest.mark.slow  # builds a population and runs a sweep

SEED = 20200830  # must match the default study so keys come from cache


@pytest.fixture(scope="module")
def mini_snapshot():
    spec = build_default_spec()
    prefix_rows = spec.rows[:7]  # 118 PA/accessible hosts, one reuse group
    mini = PopulationSpec(rows=prefix_rows)
    builder = PopulationBuilder(mini, seed=SEED)
    hosts = builder.build_hosts()
    network = SimNetwork(SimClock(parse_utc("2020-08-30")))
    install_hosts(network, hosts)
    study = Study(StudyConfig(seed=SEED))
    campaign = ScanCampaign(
        network, study.scanner_identity(), study._rng.substream("mini")
    )
    snapshot = campaign.run_sweep(label="2020-08-30")
    return mini, hosts, snapshot


class TestMiniStudy:
    def test_every_host_scanned(self, mini_snapshot):
        mini, hosts, snapshot = mini_snapshot
        assert len(snapshot.records) == mini.total_servers
        assert all(r.is_opcua for r in snapshot.records)

    def test_mode_analysis_matches_ground_truth(self, mini_snapshot):
        mini, hosts, snapshot = mini_snapshot
        stats = analyze_security_modes(snapshot.servers())
        # The prefix rows are all PA ({None} only) plus P1 rows.
        from repro.uabin.enums import MessageSecurityMode

        expected_none_only = mini.count_where(
            lambda r: set(r.mode_set) == {MessageSecurityMode.NONE}
        )
        assert stats.none_only == expected_none_only

    def test_accessibility_matches_ground_truth(self, mini_snapshot):
        mini, hosts, snapshot = mini_snapshot
        access = analyze_access_control(snapshot.servers())
        assert access.accessible == mini.count_where(lambda r: r.accessible)

    def test_classification_matches_ground_truth(self, mini_snapshot):
        mini, hosts, snapshot = mini_snapshot
        access = analyze_access_control(snapshot.servers())
        assert access.production == mini.count_where(
            lambda r: r.outcome == "accessible-production"
        )
        assert access.test == mini.count_where(
            lambda r: r.outcome == "accessible-test"
        )

    def test_reuse_groups_visible(self, mini_snapshot):
        mini, hosts, snapshot = mini_snapshot
        reuse = analyze_certificate_reuse(snapshot.servers())
        expected_groups = {
            r.reuse_group for r in mini.rows if r.reuse_group is not None
        }
        assert len(reuse.reused_on_3plus) == len(expected_groups)

    def test_deficits_match_ground_truth(self, mini_snapshot):
        mini, hosts, snapshot = mini_snapshot
        summary = analyze_deficits(snapshot.servers())
        assert summary.deficient == mini.deficient_count()

    def test_scanner_never_writes(self, mini_snapshot):
        """Ethics invariant: scanned servers keep their initial values."""
        mini, hosts, snapshot = mini_snapshot
        from repro.server.nodes import VariableNode

        for built in hosts:
            if not built.row.accessible:
                continue
            space = built.server.config.address_space
            # rSetFillLevel exists on production templates; its value
            # must still be whatever the generator put there (the
            # traversal reads UserAccessLevel but never writes).
            for node in space.variables():
                assert isinstance(node, VariableNode)

    def test_scan_bytes_accounted(self, mini_snapshot):
        _, _, snapshot = mini_snapshot
        accessible = [r for r in snapshot.records if r.anonymous_accessible()]
        assert all(r.scan_bytes > 0 for r in accessible)
        assert all(r.scan_duration_s >= 0 for r in accessible)
