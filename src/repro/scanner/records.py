"""Scan record schema with JSON round-trip.

Every analysis in :mod:`repro.analysis` consumes these records only —
never the ground-truth population — so the pipeline has the same
information boundary as the paper's: whatever crossed the wire.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from datetime import datetime

from repro.uabin.enums import MessageSecurityMode, UserTokenType
from repro.util.simtime import format_utc, parse_utc
from repro.x509.certificate import Certificate, CertificateError, parse_certificate
from repro.x509.fingerprint import sha1_thumbprint
from repro.x509.verify import verify_certificate_signature


@dataclass
class CertificateInfo:
    """Fields the analysis reads off a served certificate."""

    der_hex: str
    thumbprint_hex: str
    signature_hash: str
    key_bits: int
    subject: str
    issuer: str
    not_before: str
    not_after: str
    application_uri: str | None
    self_signed: bool
    signature_valid: bool
    modulus_hex: str  # for the shared-prime analysis (§5.3)

    @classmethod
    def from_der(cls, der: bytes) -> "CertificateInfo | None":
        try:
            certificate = parse_certificate(der)
        except CertificateError:
            return None
        return cls.from_certificate(certificate)

    @classmethod
    def from_certificate(cls, certificate: Certificate) -> "CertificateInfo":
        return cls(
            der_hex=certificate.raw_der.hex(),
            thumbprint_hex=sha1_thumbprint(certificate).hex(),
            signature_hash=certificate.signature_hash,
            key_bits=certificate.key_bits,
            subject=certificate.subject.rfc4514(),
            issuer=certificate.issuer.rfc4514(),
            not_before=format_utc(certificate.not_before),
            not_after=format_utc(certificate.not_after),
            application_uri=certificate.application_uri,
            self_signed=certificate.self_signed,
            signature_valid=verify_certificate_signature(certificate),
            modulus_hex=f"{certificate.public_key.n:x}",
        )

    @property
    def modulus(self) -> int:
        return int(self.modulus_hex, 16)

    def not_before_dt(self) -> datetime:
        return parse_utc(self.not_before)


@dataclass
class EndpointRecord:
    """One advertised endpoint as seen on the wire."""

    endpoint_url: str | None
    security_mode: int  # MessageSecurityMode value
    security_policy_uri: str | None
    token_types: list[int] = field(default_factory=list)
    security_level: int = 0

    @property
    def mode(self) -> MessageSecurityMode:
        return MessageSecurityMode(self.security_mode)

    def token_type_set(self) -> set[UserTokenType]:
        return {UserTokenType(t) for t in self.token_types}


@dataclass
class SecureChannelAttempt:
    """Result of the OpenSecureChannel probe with our self-signed cert."""

    security_policy_uri: str
    security_mode: int
    success: bool
    error_status: int | None = None
    error_reason: str | None = None


@dataclass
class SessionAttempt:
    """Result of the anonymous session attempt.

    ``error_category`` separates *how* a failed attempt failed —
    timeout, refusal, transport rejection, protocol fault — where
    ``error_status`` alone cannot (connection-level failures carry no
    status code).  ``details_error`` marks a partial success: the
    session activated, but collecting namespaces / software version /
    traversal failed afterwards.

    ``negotiated_policy_uri``/``negotiated_mode`` record the secure
    re-grab: the ``(policy, mode)`` pair the scanner *completed* a
    secure channel at (always the strongest advertised pair), with
    ``negotiation_error`` holding the status name or failure category
    when the handshake did not complete.  Hosts advertising only
    None endpoints leave all three unset.

    All five are sparse fields: they are omitted from the canonical
    JSON when unset, so records from hosts that never reach them keep
    their exact pre-existing bytes (pinned by the golden digests).
    """

    attempted: bool
    token_type: int | None = None
    security_mode: int | None = None
    security_policy_uri: str | None = None
    success: bool = False
    error_status: int | None = None
    error_category: str | None = None
    details_error: str | None = None
    negotiated_policy_uri: str | None = None
    negotiated_mode: int | None = None
    negotiation_error: str | None = None


@dataclass
class NodeSummary:
    """Aggregate of an anonymous address-space traversal."""

    total_nodes: int = 0
    variables: int = 0
    methods: int = 0
    readable_variables: int = 0
    writable_variables: int = 0
    executable_methods: int = 0
    readable_names_sample: list[str] = field(default_factory=list)
    writable_names_sample: list[str] = field(default_factory=list)
    executable_names_sample: list[str] = field(default_factory=list)
    # Sample of readable string values (payload; stripped from any
    # dataset release, used in-house for operator identification).
    value_samples: list[str] = field(default_factory=list)
    traversal_complete: bool = True
    budget_exhausted: str | None = None

    @property
    def readable_fraction(self) -> float:
        return self.readable_variables / self.variables if self.variables else 0.0

    @property
    def writable_fraction(self) -> float:
        return self.writable_variables / self.variables if self.variables else 0.0

    @property
    def executable_fraction(self) -> float:
        return self.executable_methods / self.methods if self.methods else 0.0


@dataclass
class HostRecord:
    """Everything the scanner learned about one host/port."""

    ip: int
    port: int
    asn: int | None
    timestamp: str
    tcp_open: bool = False
    is_opcua: bool = False
    via_reference: bool = False
    application_uri: str | None = None
    application_type: int | None = None
    product_uri: str | None = None
    software_version: str | None = None
    endpoints: list[EndpointRecord] = field(default_factory=list)
    certificate: CertificateInfo | None = None
    secure_channel: SecureChannelAttempt | None = None
    session: SessionAttempt | None = None
    namespaces: list[str] = field(default_factory=list)
    nodes: NodeSummary | None = None
    error: str | None = None
    # Sparse (omitted from JSON when None): connection-level failure
    # class — see SessionAttempt.error_category.
    error_category: str | None = None
    scan_duration_s: float = 0.0
    scan_bytes: int = 0

    # --- derived views used throughout the analysis -------------------------

    @property
    def is_discovery_server(self) -> bool:
        from repro.uabin.enums import ApplicationType

        return self.application_type == int(ApplicationType.DISCOVERY_SERVER)

    def security_modes(self) -> set[MessageSecurityMode]:
        return {e.mode for e in self.endpoints}

    def security_policy_uris(self) -> set[str]:
        return {
            e.security_policy_uri
            for e in self.endpoints
            if e.security_policy_uri is not None
        }

    def offered_token_types(self) -> set[UserTokenType]:
        offered: set[UserTokenType] = set()
        for endpoint in self.endpoints:
            offered |= endpoint.token_type_set()
        return offered

    def offers_anonymous(self) -> bool:
        return UserTokenType.ANONYMOUS in self.offered_token_types()

    def anonymous_accessible(self) -> bool:
        return bool(self.session and self.session.success)

    def secure_channel_ok(self) -> bool:
        return self.secure_channel is None or self.secure_channel.success

    # --- JSON ----------------------------------------------------------------

    #: Fields added after the dataset schema froze; omitted from the
    #: canonical JSON while unset so the simulated lane's bytes (and
    #: with them the golden digests) are unchanged by their existence.
    _SPARSE_FIELDS = ("error_category",)
    _SPARSE_SESSION_FIELDS = (
        "error_category",
        "details_error",
        "negotiated_policy_uri",
        "negotiated_mode",
        "negotiation_error",
    )

    def to_json_dict(self) -> dict:
        data = asdict(self)
        for key in self._SPARSE_FIELDS:
            if data.get(key) is None:
                data.pop(key, None)
        session = data.get("session")
        if session:
            for key in self._SPARSE_SESSION_FIELDS:
                if session.get(key) is None:
                    session.pop(key, None)
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "HostRecord":
        data = dict(data)
        if data.get("certificate"):
            data["certificate"] = CertificateInfo(**data["certificate"])
        if data.get("secure_channel"):
            data["secure_channel"] = SecureChannelAttempt(**data["secure_channel"])
        if data.get("session"):
            data["session"] = SessionAttempt(**data["session"])
        if data.get("nodes"):
            data["nodes"] = NodeSummary(**data["nodes"])
        data["endpoints"] = [EndpointRecord(**e) for e in data.get("endpoints", [])]
        return cls(**data)


@dataclass
class MeasurementSnapshot:
    """One dated sweep: the unit Figure 2 plots."""

    date: str
    records: list[HostRecord] = field(default_factory=list)
    probed: int = 0
    port_open: int = 0
    excluded: int = 0

    def reachable(self) -> list[HostRecord]:
        return [r for r in self.records if r.is_opcua]

    def servers(self) -> list[HostRecord]:
        """Non-discovery OPC UA servers — the paper's analysis set."""
        return [r for r in self.reachable() if not r.is_discovery_server]

    def discovery_servers(self) -> list[HostRecord]:
        return [r for r in self.reachable() if r.is_discovery_server]

    def date_dt(self) -> datetime:
        return parse_utc(self.date)

    def to_json_dict(self) -> dict:
        """Canonical JSON form: counters plus every record, in the
        engine's canonical record order.  The golden-digest tests and
        the cross-backend benchmarks hash exactly this."""
        return {
            "date": self.date,
            "probed": self.probed,
            "port_open": self.port_open,
            "excluded": self.excluded,
            "records": [record.to_json_dict() for record in self.records],
        }
