from repro.reporting.charts import render_bars, render_cdf
from repro.reporting.figures import Comparison, ExperimentReport
from repro.reporting.tables import render_table


class TestTables:
    def test_basic_table(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "30" in lines[3]

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_column_padding_accommodates_data(self):
        text = render_table(["h"], [["wide-value"]])
        header, underline, row = text.splitlines()
        assert len(underline) >= len("wide-value")

    def test_empty_rows(self):
        text = render_table(["h1", "h2"], [])
        assert "h1" in text


class TestCharts:
    def test_bars_scale_to_peak(self):
        text = render_bars({"a": 10, "b": 5}, width=10)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") == 10
        assert b_line.count("#") == 5

    def test_bars_empty(self):
        assert "(no data)" in render_bars({})

    def test_bars_zero_value(self):
        text = render_bars({"a": 0, "b": 1})
        assert "a |" in text

    def test_cdf_output(self):
        text = render_cdf([1.0, 0.9, 0.2], "readable", points=4)
        assert text.startswith("readable")
        assert "100%" in text

    def test_cdf_empty(self):
        assert "(no data)" in render_cdf([], "x")


class TestExperimentReport:
    def test_exact_match_counting(self):
        report = ExperimentReport("x", "t")
        report.add("m1", 1, 1)
        report.add("m2", 1, 2)
        assert report.exact_matches() == 1

    def test_render_contains_marks(self):
        report = ExperimentReport("x", "t")
        report.add("good", 5, 5)
        report.add("off", 5, 6)
        text = report.render()
        assert "x: t" in text
        assert "=" in text and "~" in text

    def test_relative_error(self):
        assert Comparison("m", 100, 105).relative_error() == 0.05
        assert Comparison("m", "a", "a").relative_error() is None
        assert Comparison("m", 0, 0).relative_error() is None

    def test_body_appended(self):
        report = ExperimentReport("x", "t", body="chart here")
        assert report.render().endswith("chart here")
