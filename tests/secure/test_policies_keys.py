import pytest

from repro.secure.keysets import derive_channel_keys
from repro.secure.policies import (
    ALL_POLICIES,
    DEPRECATED_POLICIES,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
    SECURE_POLICIES,
    policy_by_label,
    policy_by_uri,
)


class TestPolicyTable:
    """The policy registry must match the paper's Table 1."""

    def test_six_policies(self):
        assert len(ALL_POLICIES) == 6

    def test_labels(self):
        assert [p.short_label for p in ALL_POLICIES] == [
            "N", "D1", "D2", "S1", "S2", "S3",
        ]

    def test_deprecated_set(self):
        assert {p.short_label for p in DEPRECATED_POLICIES} == {"D1", "D2"}

    def test_secure_set(self):
        assert {p.short_label for p in SECURE_POLICIES} == {"S1", "S2", "S3"}

    def test_none_provides_no_security(self):
        assert not POLICY_NONE.provides_security
        assert not POLICY_NONE.is_secure_and_current

    def test_deprecated_use_sha1_certificates(self):
        assert POLICY_BASIC128RSA15.certificate_hash == ("sha1",)
        assert "sha1" in POLICY_BASIC256.certificate_hash

    def test_key_ranges_match_table1(self):
        assert (POLICY_BASIC128RSA15.min_key_bits,
                POLICY_BASIC128RSA15.max_key_bits) == (1024, 2048)
        assert (POLICY_BASIC256SHA256.min_key_bits,
                POLICY_BASIC256SHA256.max_key_bits) == (2048, 4096)

    def test_security_rank_strictly_increasing(self):
        ranks = [p.security_rank for p in ALL_POLICIES]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_uri_lookup(self):
        for policy in ALL_POLICIES:
            assert policy_by_uri(policy.uri) is policy

    def test_uri_lookup_unknown(self):
        with pytest.raises(KeyError):
            policy_by_uri("http://example.com/bogus")
        with pytest.raises(KeyError):
            policy_by_uri(None)

    def test_label_lookup(self):
        assert policy_by_label("S2") is POLICY_BASIC256SHA256
        assert policy_by_label("Basic256Sha256") is POLICY_BASIC256SHA256
        with pytest.raises(KeyError):
            policy_by_label("S9")

    def test_key_bits_in_range(self):
        assert POLICY_BASIC256SHA256.key_bits_in_range(2048)
        assert POLICY_BASIC256SHA256.key_bits_in_range(4096)
        assert not POLICY_BASIC256SHA256.key_bits_in_range(1024)

    def test_signature_lengths(self):
        assert POLICY_BASIC128RSA15.signature_length == 20
        assert POLICY_BASIC256SHA256.signature_length == 32
        assert POLICY_NONE.signature_length == 0


class TestKeyDerivation:
    @pytest.mark.parametrize("policy", [p for p in ALL_POLICIES if p is not POLICY_NONE])
    def test_key_lengths(self, policy):
        client_nonce = b"\x01" * policy.nonce_length
        server_nonce = b"\x02" * policy.nonce_length
        client_keys, server_keys = derive_channel_keys(
            policy, client_nonce, server_nonce
        )
        for keys in (client_keys, server_keys):
            assert len(keys.signing_key) == policy.sym_signature_key_len
            assert len(keys.encryption_key) == policy.sym_encryption_key_len
            assert len(keys.initialization_vector) == policy.sym_block_size

    def test_directions_differ(self):
        policy = POLICY_BASIC256SHA256
        client_keys, server_keys = derive_channel_keys(
            policy, b"\x01" * 32, b"\x02" * 32
        )
        assert client_keys.signing_key != server_keys.signing_key
        assert client_keys.encryption_key != server_keys.encryption_key

    def test_deterministic(self):
        policy = POLICY_BASIC256SHA256
        a = derive_channel_keys(policy, b"\x01" * 32, b"\x02" * 32)
        b = derive_channel_keys(policy, b"\x01" * 32, b"\x02" * 32)
        assert a == b

    def test_nonce_sensitivity(self):
        policy = POLICY_BASIC256SHA256
        a, _ = derive_channel_keys(policy, b"\x01" * 32, b"\x02" * 32)
        b, _ = derive_channel_keys(policy, b"\x03" * 32, b"\x02" * 32)
        assert a.signing_key != b.signing_key

    def test_wrong_nonce_length_rejected(self):
        with pytest.raises(ValueError):
            derive_channel_keys(POLICY_BASIC256SHA256, b"\x01" * 16, b"\x02" * 32)

    def test_none_policy_rejected(self):
        with pytest.raises(ValueError):
            derive_channel_keys(POLICY_NONE, b"", b"")
