"""Shared helpers: loopback stream + canned server configurations."""

from __future__ import annotations

from repro.client import ClientIdentity, UaClient
from repro.secure.negotiation import ChannelSecurity
from repro.secure.policies import POLICY_BASIC256SHA256, POLICY_NONE
from repro.server import (
    Authenticator,
    EndpointConfig,
    Permissions,
    ServerConfig,
    UaServer,
    UserDirectory,
    VariableNode,
)
from repro.server.addressspace import AddressSpace, NodeIds, ReferenceTypeIds
from repro.server.nodes import MethodNode, ObjectNode
from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.enums import MessageSecurityMode, UserTokenType
from repro.uabin.nodeid import NodeId
from repro.uabin.variant import Variant, VariantType
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed


class LoopbackStream:
    """Connects a UaClient directly to a ServerConnection in-process."""

    def __init__(self, server: UaServer):
        self._connection = server.new_connection()
        self._inbox = bytearray()

    def write(self, data: bytes) -> None:
        self._inbox.extend(self._connection.receive(data))

    def read(self) -> bytes:
        out = bytes(self._inbox)
        self._inbox.clear()
        return out


def demo_address_space() -> AddressSpace:
    space = AddressSpace()
    demo_ns = space.register_namespace("urn:repro:tests:demo")
    plant = ObjectNode(
        node_id=NodeId(demo_ns, "Plant"),
        browse_name=QualifiedName(demo_ns, "Plant"),
        display_name=LocalizedText("Plant"),
    )
    space.add_node(plant, parent=NodeIds.ObjectsFolder,
                   reference_type=ReferenceTypeIds.Organizes)
    space.add_node(
        VariableNode(
            node_id=NodeId(demo_ns, "Plant/m3InflowPerHour"),
            browse_name=QualifiedName(demo_ns, "m3InflowPerHour"),
            display_name=LocalizedText("m3InflowPerHour"),
            value=Variant(12.5, VariantType.DOUBLE),
            permissions=Permissions.make(read_anonymous=True),
        ),
        parent=plant.node_id,
    )
    space.add_node(
        VariableNode(
            node_id=NodeId(demo_ns, "Plant/rSetFillLevel"),
            browse_name=QualifiedName(demo_ns, "rSetFillLevel"),
            display_name=LocalizedText("rSetFillLevel"),
            value=Variant(80.0, VariantType.DOUBLE),
            permissions=Permissions.make(read_anonymous=True, write_anonymous=True),
        ),
        parent=plant.node_id,
    )
    space.add_node(
        VariableNode(
            node_id=NodeId(demo_ns, "Plant/Secret"),
            browse_name=QualifiedName(demo_ns, "Secret"),
            display_name=LocalizedText("Secret"),
            value=Variant("classified", VariantType.STRING),
            permissions=Permissions(),  # authenticated only
        ),
        parent=plant.node_id,
    )
    space.add_node(
        MethodNode(
            node_id=NodeId(demo_ns, "Plant/AddEndpoint"),
            browse_name=QualifiedName(demo_ns, "AddEndpoint"),
            display_name=LocalizedText("AddEndpoint"),
            permissions=Permissions.make(execute_anonymous=True),
        ),
        parent=plant.node_id,
    )
    return space


def build_server(
    rng: DeterministicRng,
    server_keys,
    endpoint_configs=None,
    token_types=None,
    behavior=None,
    address_space=None,
    users: dict[str, str] | None = None,
):
    certificate = make_self_signed(
        server_keys,
        common_name="test-server",
        application_uri="urn:repro:tests:server",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("server-cert"),
    )
    token_types = token_types or [UserTokenType.ANONYMOUS, UserTokenType.USERNAME]
    directory = UserDirectory()
    for name, password in (users or {"operator": "secret"}).items():
        directory.add_user(name, password)
    config = ServerConfig(
        application_uri="urn:repro:tests:server",
        application_name="Test Server",
        endpoint_url="opc.tcp://10.0.0.1:4840/",
        certificate=certificate,
        private_key=server_keys.private,
        endpoint_configs=endpoint_configs
        or [
            EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE),
            EndpointConfig(MessageSecurityMode.SIGN, POLICY_BASIC256SHA256),
            EndpointConfig(
                MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256SHA256
            ),
        ],
        token_types=token_types,
        authenticator=Authenticator(
            allowed_token_types=set(token_types), directory=directory
        ),
        address_space=address_space or demo_address_space(),
        software_version="3.10.1",
    )
    if behavior is not None:
        config.behavior = behavior
    return UaServer(config, rng.substream("server"))


def secure_open(client: UaClient, policy, mode, server_certificate_der):
    """Open ``client``'s channel at ``(policy, mode)`` toward a server cert."""
    return client.open_secure_channel(
        ChannelSecurity.for_endpoint(
            policy, mode, client.identity, server_certificate_der
        )
    )


def build_client(server: UaServer, rng: DeterministicRng, client_keys):
    certificate = make_self_signed(
        client_keys,
        common_name="test-client",
        application_uri="urn:repro:tests:client",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("client-cert"),
    )
    identity = ClientIdentity(
        application_uri="urn:repro:tests:client",
        application_name="Test Client",
        certificate=certificate,
        private_key=client_keys.private,
    )
    return UaClient(
        LoopbackStream(server),
        identity,
        rng.substream("client"),
        endpoint_url="opc.tcp://10.0.0.1:4840/",
    )
