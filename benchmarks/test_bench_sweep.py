"""Scan-engine benchmark: serial vs. parallel sweep + probe throughput.

Times the final (2020-08-30) sweep — port scan, per-host grab,
follow-references — once per executor backend against an identically
re-assembled network, asserts the resulting snapshots are
byte-identical, and records hosts-per-second throughput to
``benchmarks/.sweep_metrics.json`` for ``benchmarks/report.py`` to
fold into ``BENCH_sweep.json``.  A second, probe-dominated benchmark
(a wide sweep of a port almost nobody listens on) isolates the SYN
stage the executor now also fans out, and reports addresses/second.

The threaded backend mostly overlaps scheduling (the simulation is
pure Python, so the GIL serializes it), and the async backend runs its
coroutines on one loop thread; the fork-based process backend is the
one that scales with cores.  The ≥2× speedup assertion therefore
targets the process backend and only on machines with at least four
CPUs (set ``REPRO_BENCH_STRICT=1`` to enforce it there).  Probing is
different: the process backend runs stage-0 batches inline in the
coordinator (a batch is cheaper than its pickle), so its strict probe
gate asserts near-serial throughput rather than a speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.study import Study, StudyConfig
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import build_executor

SEED = 20200830
FINAL_SWEEP = 7
BACKENDS = (("serial", 1), ("thread", 4), ("process", 4), ("async", 8))
METRICS_PATH = Path(__file__).resolve().parent / ".sweep_metrics.json"

# Probe benchmark shape: a port with (nearly) no listeners, many empty
# candidates, and coarse batches so per-task work dwarfs pool overhead.
PROBE_PORT = 9999
PROBE_EXTRA_CANDIDATES = 20_000
PROBE_BATCH_SIZE = 1024


def _snapshot_json(snapshot) -> str:
    return json.dumps(snapshot.to_json_dict(), sort_keys=True)


def _update_metrics(section: str, data: dict) -> None:
    """Merge one section into the shared side file (report.py input).

    Both benchmarks in this module write it; merging keeps whichever
    ran (``-k`` selections included) without clobbering the other.
    """
    merged = {}
    if METRICS_PATH.exists():
        try:
            merged = json.loads(METRICS_PATH.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged["cpu_count"] = os.cpu_count()
    merged[section] = data
    METRICS_PATH.write_text(json.dumps(merged, indent=2))


def _run_final_sweep(study_result, executor_name: str, workers: int):
    """Re-assemble the last sweep's Internet and scan it once."""
    network = study_result.timeline.network_for_sweep(FINAL_SWEEP)
    study = Study(StudyConfig(seed=SEED))
    campaign = ScanCampaign(
        network,
        study.scanner_identity(),
        study._rng.substream("bench-sweep"),
        executor=build_executor(executor_name, workers),
    )
    start = time.perf_counter()
    snapshot = campaign.run_sweep(
        label="2020-08-30", follow_references=True, traverse=False
    )
    elapsed = time.perf_counter() - start
    return snapshot, elapsed


def test_bench_sweep_throughput(study_result):
    metrics = {}
    reference_json = None
    serial_seconds = None

    for name, workers in BACKENDS:
        snapshot, elapsed = _run_final_sweep(study_result, name, workers)
        payload = _snapshot_json(snapshot)
        if reference_json is None:
            reference_json = payload
            serial_seconds = elapsed
        else:
            assert payload == reference_json, (
                f"{name} backend diverged from the serial reference"
            )
        hosts = len(snapshot.records)
        metrics[f"{name}x{workers}"] = {
            "seconds": round(elapsed, 3),
            "hosts": hosts,
            "hosts_per_second": round(hosts / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
        }
        print(
            f"[sweep] {name}x{workers}: {hosts} hosts in {elapsed:.2f}s "
            f"({hosts / elapsed:.0f} hosts/s, "
            f"{serial_seconds / elapsed:.2f}x serial)"
        )

    _update_metrics("backends", metrics)

    if os.environ.get("REPRO_BENCH_STRICT") and (os.cpu_count() or 1) >= 4:
        speedup = metrics["processx4"]["speedup_vs_serial"]
        assert speedup >= 2.0, f"process pool only {speedup}x serial"


def _run_probe_sweep(study_result, executor_name: str, workers: int):
    """Probe ``PROBE_PORT`` across the final network plus 20k empties.

    Almost nothing listens there, so grab work is negligible and the
    measurement isolates stage-0 batch fan-out.
    """
    network = study_result.timeline.network_for_sweep(FINAL_SWEEP)
    study = Study(StudyConfig(seed=SEED))
    campaign = ScanCampaign(
        network,
        study.scanner_identity(),
        study._rng.substream("bench-probe"),
        port=PROBE_PORT,
        executor=build_executor(executor_name, workers),
    )
    start = time.perf_counter()
    snapshot = campaign.run_sweep(
        label="2020-08-30",
        traverse=False,
        extra_candidates=PROBE_EXTRA_CANDIDATES,
        batch_size=PROBE_BATCH_SIZE,
    )
    elapsed = time.perf_counter() - start
    return snapshot, elapsed


def test_bench_probe_throughput(study_result):
    metrics = {}
    reference = None
    serial_seconds = None

    for name, workers in BACKENDS:
        snapshot, elapsed = _run_probe_sweep(study_result, name, workers)
        accounting = (snapshot.probed, snapshot.port_open, snapshot.excluded)
        if reference is None:
            reference, serial_seconds = accounting, elapsed
        else:
            assert accounting == reference, (
                f"{name} probe accounting diverged from serial"
            )
        addresses = snapshot.probed + snapshot.excluded
        metrics[f"{name}x{workers}"] = {
            "seconds": round(elapsed, 3),
            "addresses": addresses,
            "addresses_per_second": round(addresses / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
        }
        print(
            f"[probe] {name}x{workers}: {addresses} addresses in "
            f"{elapsed:.2f}s ({addresses / elapsed:.0f} addr/s, "
            f"{serial_seconds / elapsed:.2f}x serial)"
        )

    _update_metrics("probe", metrics)

    if os.environ.get("REPRO_BENCH_STRICT") and (os.cpu_count() or 1) >= 4:
        # The process backend runs stage-0 probe batches inline in the
        # coordinator (zmap's SYN loop was single-threaded too), so its
        # probe throughput tracks serial minus pool setup — the strict
        # gate guards against regressing back to paying IPC per batch.
        speedup = metrics["processx4"]["speedup_vs_serial"]
        assert speedup >= 0.7, f"process-backend probing only {speedup}x serial"


SHARD_COUNT = 4
SHARD_BACKENDS = (("serial", 1), ("process", 4))


def _run_sharded_sweep(study_result, executor_name: str, workers: int):
    """Scan the final sweep as ``SHARD_COUNT`` shards, then merge.

    Each shard re-assembles its own network view and scans only its
    slice of the candidate permutation — the single-machine stand-in
    for a fleet — and the deterministic merge reassembles the sweep.
    Timing covers all shards plus the merge, so hosts/second here is
    directly comparable to the unsharded ``backends`` section (the
    gap is the per-shard environment-rebuild + merge overhead).
    """
    from repro.scanner.shard import ShardSpec, ShardedScanCampaign, merge_sweep

    start = time.perf_counter()
    parts = []
    for index in range(SHARD_COUNT):
        network = study_result.timeline.network_for_sweep(FINAL_SWEEP)
        study = Study(StudyConfig(seed=SEED))
        campaign = ShardedScanCampaign(
            network,
            study.scanner_identity(),
            study._rng.substream("bench-sweep"),
            executor=build_executor(executor_name, workers),
            shard=ShardSpec(index, SHARD_COUNT),
        )
        parts.append(
            campaign.run_sweep(
                label="2020-08-30", follow_references=True, traverse=False
            )
        )
    merged = merge_sweep(parts)
    elapsed = time.perf_counter() - start
    return merged, elapsed


def test_bench_sharded_sweep_throughput(study_result):
    """Sharded sweep + merge matches the unsharded snapshot byte-for-byte
    and records its throughput for the ``sharded_throughput`` gate."""
    reference, _ = _run_final_sweep(study_result, "serial", 1)
    reference_json = _snapshot_json(reference)

    metrics = {}
    serial_seconds = None
    for name, workers in SHARD_BACKENDS:
        merged, elapsed = _run_sharded_sweep(study_result, name, workers)
        assert _snapshot_json(merged) == reference_json, (
            f"{name} sharded merge diverged from the unsharded reference"
        )
        if serial_seconds is None:
            serial_seconds = elapsed
        hosts = len(merged.records)
        metrics[f"{name}x{workers}"] = {
            "seconds": round(elapsed, 3),
            "hosts": hosts,
            "shards": SHARD_COUNT,
            "hosts_per_second": round(hosts / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
        }
        print(
            f"[sharded] {name}x{workers} ({SHARD_COUNT} shards): "
            f"{hosts} hosts in {elapsed:.2f}s "
            f"({hosts / elapsed:.0f} hosts/s, "
            f"{serial_seconds / elapsed:.2f}x serial)"
        )

    _update_metrics("sharded", metrics)


def test_bench_parallel_study_identical(study_result):
    """Acceptance: a full 8-sweep study with 4 workers is byte-identical
    to the serial reference (the session-cached ``study_result``).

    Uses the process backend deliberately: it is the backend whose
    worker-side state never propagates back to the parent, so the
    cross-sweep interactions (renewals, reseeding, discovery fleets)
    are the riskiest there — and on a multi-core runner it is also the
    fastest way to run the second study.
    """
    parallel = Study(
        StudyConfig(seed=SEED, executor="process", workers=4)
    ).run()
    assert len(parallel.snapshots) == len(study_result.snapshots)
    for serial_snap, parallel_snap in zip(
        study_result.snapshots, parallel.snapshots
    ):
        assert parallel_snap.date == serial_snap.date
        assert parallel_snap.probed == serial_snap.probed
        assert parallel_snap.port_open == serial_snap.port_open
        assert parallel_snap.excluded == serial_snap.excluded
        assert _snapshot_json(parallel_snap) == _snapshot_json(serial_snap)
