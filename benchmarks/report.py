"""Benchmark-regression report: run the bench suite, emit BENCH_sweep.json.

Usage::

    python benchmarks/report.py                  # full bench suite
    python benchmarks/report.py -k fig2          # subset, pytest -k syntax
    python benchmarks/report.py -o out.json      # alternate output path
    python benchmarks/report.py --profile        # + BENCH_profile.txt

Runs ``pytest benchmarks`` with an in-process plugin that records the
call-phase duration and outcome of every benchmark test, merges the
sweep-engine throughput metrics that ``test_bench_sweep.py`` writes as
a side file, and saves everything as one JSON document.  CI's ``full``
job uploads the file as an artifact, giving every main-branch commit a
comparable per-figure timing record.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SWEEP_METRICS = REPO_ROOT / "benchmarks" / ".sweep_metrics.json"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sweep.json"
DEFAULT_PROFILE_OUTPUT = REPO_ROOT / "BENCH_profile.txt"


def _throughput_section(
    sweep: dict | None, section: str, rate_key: str
) -> dict | None:
    """``{rate_key: {backend: rate}, parallel_beats_serial: bool}``."""
    if not sweep or not isinstance(sweep.get(section), dict):
        return None
    rates = {
        backend: stats.get(rate_key)
        for backend, stats in sweep[section].items()
        if isinstance(stats, dict)
    }
    serial_rate = next(
        (rate for backend, rate in rates.items()
         if backend.startswith("serial")),
        None,
    )
    return {
        rate_key: rates,
        "parallel_beats_serial": bool(
            serial_rate
            and any(
                rate > serial_rate
                for backend, rate in rates.items()
                if not backend.startswith("serial") and rate
            )
        ),
    }


class _DurationRecorder:
    """Pytest plugin: nodeid -> {seconds, outcome} for call phases."""

    def __init__(self) -> None:
        self.results: dict[str, dict] = {}

    def pytest_runtest_logreport(self, report) -> None:
        if report.when != "call":
            return
        self.results[report.nodeid] = {
            "seconds": round(report.duration, 3),
            "outcome": report.outcome,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-k", default=None, help="pytest -k selection")
    parser.add_argument(
        "-o", "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the suite under cProfile and write the hot-function "
            "report plus crypto-cache hit rates to --profile-output"
        ),
    )
    parser.add_argument(
        "--profile-output", type=Path, default=DEFAULT_PROFILE_OUTPUT,
        help=f"profile text path (default: {DEFAULT_PROFILE_OUTPUT.name})",
    )
    args = parser.parse_args(argv)

    # `python -m pytest` puts the CWD on sys.path; pytest.main() does
    # not, so add the repo root (for `benchmarks.conftest` imports)
    # and src/ (for `repro`) explicitly.
    for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    import pytest

    # Drop any side file from a previous run: sweep metrics must come
    # from this run or be reported as absent, never stale.
    SWEEP_METRICS.unlink(missing_ok=True)

    pytest_args = [str(REPO_ROOT / "benchmarks"), "-q", "--benchmark-disable"]
    if args.k:
        pytest_args += ["-k", args.k]

    recorder = _DurationRecorder()
    if args.profile:
        from repro.util.profiling import ProfileSession

        # Allocation tracing under tracemalloc slows the suite several
        # fold, which would distort the very timings being recorded —
        # the bench profile wants the time split, not the peak.
        with ProfileSession(top=40, trace_allocations=False) as session:
            exit_code = pytest.main(pytest_args, plugins=[recorder])
    else:
        session = None
        exit_code = pytest.main(pytest_args, plugins=[recorder])

    sweep = None
    if SWEEP_METRICS.exists():
        try:
            sweep = json.loads(SWEEP_METRICS.read_text())
        except json.JSONDecodeError:
            sweep = None

    # Headline throughput metrics per backend: grab (full pipeline,
    # hosts/second), probe (SYN stage alone, addresses/second), sharded
    # (partitioned sweep + deterministic merge, hosts/second), and diff
    # (streaming catalog fold, records/second), plus whether any
    # parallel backend beat serial on this machine (expected false on
    # 1-2 core runners).  benchmarks/compare.py diffs exactly these
    # sections against BENCH_baseline.json.
    grab_throughput = _throughput_section(
        sweep, "backends", "hosts_per_second"
    )
    probe_throughput = _throughput_section(
        sweep, "probe", "addresses_per_second"
    )
    sharded_throughput = _throughput_section(
        sweep, "sharded", "hosts_per_second"
    )
    # Same pipeline, hostile population: every grab hits a device-zoo
    # pathology, so this rate tracks the failure paths (stall
    # deadlines, early aborts, error classification).
    hostile_grab_throughput = _throughput_section(
        sweep, "hostile", "hosts_per_second"
    )
    diff_throughput = _throughput_section(
        sweep, "diff", "records_per_second"
    )
    # Per-policy rather than per-backend: the handshake bench splits
    # by security policy, so a primitive-level regression is visible
    # as one policy's rate falling while the others hold.
    secure_handshake_throughput = _throughput_section(
        sweep, "secure_handshake", "handshakes_per_second"
    )

    payload = {
        "suite": "benchmarks",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "pytest_exit_code": int(exit_code),
        "figures": dict(sorted(recorder.results.items())),
        "sweep_engine": sweep,
        "grab_throughput": grab_throughput,
        "probe_throughput": probe_throughput,
        "sharded_throughput": sharded_throughput,
        "hostile_grab_throughput": hostile_grab_throughput,
        "diff_throughput": diff_throughput,
        "secure_handshake_throughput": secure_handshake_throughput,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} ({len(recorder.results)} benchmark timings)")
    if session is not None:
        from repro.crypto.cache import cache_stats
        from repro.secure.crypto_suite import OP_STATS

        cache_lines = [
            f"{entry['name']:<18} size={entry['size']:<5} "
            f"hits={entry['hits']:<7} misses={entry['misses']:<7} "
            f"hit_rate={entry['hit_rate']:.2%}"
            for entry in cache_stats()
        ]
        args.profile_output.write_text(
            "--- crypto caches (end of suite) ---\n"
            + "\n".join(cache_lines)
            + "\n\n--- secure-channel crypto ops (sign/verify/encrypt) ---\n"
            + OP_STATS.render()
            + "\n\n--- hot functions (cProfile, by cumulative time) ---\n"
            + session.stats_text()
        )
        print(f"wrote {args.profile_output}")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
