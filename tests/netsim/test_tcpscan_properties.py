"""Property-style tests for the candidate permutation and its batching.

The batched SYN sweep hands ``candidate_batches`` output to parallel
executor workers, so everything downstream rests on four properties:

* the permutation is a pure function of ``(seed, port)``;
* batches partition the stream (disjoint, nothing dropped);
* deduplication holds even when ``extra_candidates`` draws collide
  with registered hosts or with each other;
* batch size changes only the cut points, never the visit order.

Plus the accounting regression: ``candidate_batches`` deliberately
does not consult the blocklist (zmap's shard permutation is
blocklist-agnostic; exclusion happens at probe time), so batched and
unbatched probing must report identical probed/excluded/open totals.
"""

from __future__ import annotations

import pytest

from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimHost, SimNetwork
from repro.netsim.tcpscan import candidate_batches, sweep_port
from repro.scanner.campaign import ScanCampaign, ScannerIdentity
from repro.scanner.executor import ProbeBatchTask
from repro.util.rng import DeterministicRng

PORT = 4840

ADDRESSES = [10 * n + 7 for n in range(1, 90)]


class _SilentService:
    """A listener that answers every write with silence (not OPC UA)."""

    closed = False

    def receive(self, data: bytes) -> bytes:
        return b""


def _network(addresses, listening=None):
    network = SimNetwork()
    for address in addresses:
        host = SimHost(address=address)
        if listening is None or address in listening:
            host.listen(PORT, _SilentService)
        network.add_host(host)
    return network


def _rng() -> DeterministicRng:
    return DeterministicRng(20200830, "tcpscan-properties")


def _flatten(network, port, rng, **kwargs):
    return [
        address
        for batch in candidate_batches(network, port, rng, **kwargs)
        for address in batch
    ]


class TestPermutationPurity:
    def test_same_seed_and_port_same_order(self):
        network = _network(ADDRESSES)
        first = _flatten(network, PORT, _rng(), extra_candidates=25)
        second = _flatten(network, PORT, _rng(), extra_candidates=25)
        assert first == second

    def test_different_port_different_substream(self):
        network = _network(ADDRESSES)
        assert _flatten(network, PORT, _rng()) != _flatten(
            network, 4841, _rng()
        )

    def test_batch_size_changes_granularity_not_order(self):
        network = _network(ADDRESSES)
        reference = _flatten(
            network, PORT, _rng(), extra_candidates=25, batch_size=256
        )
        for batch_size in (1, 3, 16, 64):
            assert (
                _flatten(
                    network,
                    PORT,
                    _rng(),
                    extra_candidates=25,
                    batch_size=batch_size,
                )
                == reference
            )

    def test_batches_respect_requested_size(self):
        network = _network(ADDRESSES)
        batches = list(
            candidate_batches(network, PORT, _rng(), batch_size=16)
        )
        assert all(len(batch) == 16 for batch in batches[:-1])
        assert 0 < len(batches[-1]) <= 16


class TestPartitioning:
    def test_batches_are_disjoint_and_complete(self):
        network = _network(ADDRESSES)
        batches = list(
            candidate_batches(
                network, PORT, _rng(), extra_candidates=40, batch_size=8
            )
        )
        flat = [address for batch in batches for address in batch]
        assert len(flat) == len(set(flat)), "duplicate across batches"
        assert set(ADDRESSES) <= set(flat), "registered host dropped"

    def test_dedup_with_colliding_extra_candidates(self):
        # The extra-candidate draws are deterministic, so we can
        # pre-compute them and register hosts at exactly those
        # addresses — forcing the collision the dedup guards against.
        probe_rng = _rng().substream(f"sweep-{PORT}")
        draws = [probe_rng.randrange(2**32) for _ in range(10)]
        network = _network([draws[0], draws[3], 42])
        flat = _flatten(network, PORT, _rng(), extra_candidates=10)
        assert len(flat) == len(set(flat))
        # Colliding addresses appear exactly once, and nothing is
        # lost: the stream is hosts ∪ extras, deduplicated.
        assert set(flat) == {42, *draws}


class TestBlocklistAccounting:
    """Excluded counts must not depend on how the stream is probed."""

    @pytest.fixture()
    def scenario(self):
        listening = set(ADDRESSES[::3])
        network = _network(ADDRESSES, listening=listening)
        blocklist = Blocklist()
        # Block a slice covering listening and silent hosts alike.
        blocklist.add_raw_range(ADDRESSES[10], ADDRESSES[30])
        return network, blocklist

    def test_batched_matches_unbatched_accounting(self, scenario):
        network, blocklist = scenario
        unbatched = sweep_port(
            network,
            PORT,
            _rng(),
            blocklist=blocklist,
            extra_candidates=60,
        )

        # Re-probe the identical candidate stream batch-by-batch, the
        # way executor workers do, and require identical totals.
        # (candidate_batches derives its own f"sweep-{port}" substream
        # from the rng it is given, so passing a fresh _rng() walks
        # the exact permutation sweep_port consumed.)
        campaign = ScanCampaign(
            network,
            ScannerIdentity(client_identity=None),
            _rng(),
            blocklist=blocklist,
        )
        probed = excluded = opens = 0
        for index, batch in enumerate(
            candidate_batches(
                network, PORT, _rng(), extra_candidates=60, batch_size=8
            )
        ):
            outcome = campaign._probe_batch(
                ProbeBatchTask(index, PORT, tuple(batch)), "2020-08-30"
            )
            probed += outcome.probed
            excluded += outcome.excluded
            opens += len(outcome.open_addresses)

        assert probed == unbatched.probed
        assert excluded == unbatched.excluded
        assert opens == unbatched.open_count
        assert excluded > 0, "scenario must actually exercise exclusion"

    def test_full_campaign_accounting_matches_sweep_port(self, scenario):
        """End-to-end: snapshot counters equal the standalone sweep's,
        for the serial and a pooled backend alike."""
        from repro.scanner.executor import build_executor

        network, blocklist = scenario
        unbatched = sweep_port(
            network,
            PORT,
            _rng().substream("sweep-2020-08-30"),
            blocklist=blocklist,
            extra_candidates=60,
        )
        for backend, workers in (("serial", 1), ("thread", 4)):
            campaign = ScanCampaign(
                network,
                ScannerIdentity(client_identity=None),
                _rng(),
                blocklist=blocklist,
                executor=build_executor(backend, workers),
            )
            snapshot = campaign.run_sweep(
                label="2020-08-30",
                extra_candidates=60,
                traverse=False,
                batch_size=8,
            )
            assert snapshot.probed == unbatched.probed
            assert snapshot.excluded == unbatched.excluded
            assert snapshot.port_open == unbatched.open_count
