"""IPv6 extension analysis (paper future work, §6).

The paper: "It might be possible that various OPC UA devices are
connected via IPv6 only ... We do not anticipate that these devices
are configured more securely."  This analysis runs a hitlist-based
IPv6 measurement over the dual-stack population and compares the
deficiency rate of IPv6-reachable devices against the IPv4 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.deficits import analyze_deficits
from repro.scanner.records import HostRecord

#: Share of the population assumed dual-stack in the sampled variant
#: (matches the fraction the netsim experiment enables IPv6 on).
DUAL_STACK_FRACTION = 0.2


@dataclass
class Ipv6Comparison:
    ipv4_servers: int
    ipv4_deficient_fraction: float
    ipv6_servers: int
    ipv6_deficient_fraction: float
    hitlist_size: int
    hitlist_hits: int

    @property
    def configured_more_securely(self) -> bool:
        """Is the IPv6 subset *meaningfully* more secure? (paper: no)"""
        return (
            self.ipv6_deficient_fraction
            < self.ipv4_deficient_fraction - 0.05
        )


def analyze_dual_stack_sample(
    records: list[HostRecord],
    seed: int,
    fraction: float = DUAL_STACK_FRACTION,
) -> Ipv6Comparison:
    """Wire-data-only variant of the IPv6 comparison.

    The full ``ipv6`` *experiment* rebuilds the simulated network,
    enables IPv6 on a fifth of the population, and actually scans a
    hitlist.  This registry task reproduces the paper's §6 conjecture
    check from the scan records alone — the dual-stack subset is drawn
    per-host from a pure ``(seed, ip, port)`` substream, standing in
    for hitlist coverage, and a dual-stack host's configuration is by
    definition identical on both families (it is the same server).
    Pure over the snapshot data, so it can run from a study store with
    no network at all.
    """
    from repro.util.rng import DeterministicRng

    rng = DeterministicRng(seed, "analysis/ipv6-sample")
    sampled = [
        record
        for record in records
        if rng.substream(f"{record.ip}:{record.port}").random() < fraction
    ]
    return compare_address_families(records, sampled, hitlist_size=len(sampled))


def compare_address_families(
    ipv4_records: list[HostRecord],
    ipv6_records: list[HostRecord],
    hitlist_size: int,
) -> Ipv6Comparison:
    ipv4 = analyze_deficits(ipv4_records)
    ipv6 = analyze_deficits(ipv6_records)
    return Ipv6Comparison(
        ipv4_servers=ipv4.total_servers,
        ipv4_deficient_fraction=ipv4.deficient_fraction,
        ipv6_servers=ipv6.total_servers,
        ipv6_deficient_fraction=ipv6.deficient_fraction,
        hitlist_size=hitlist_size,
        hitlist_hits=len(ipv6_records),
    )
