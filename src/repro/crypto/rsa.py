"""Textbook RSA keys with CRT private operations.

Padding lives in :mod:`repro.crypto.pkcs1`; this module only provides
key generation and the raw modular-exponentiation primitives.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crypto.cache import KeyedOpCache
from repro.crypto.primes import generate_prime

DEFAULT_PUBLIC_EXPONENT = 65537

# Handshake-invariant operation memos.  An RSA primitive is a pure
# function of (modulus, exponent, representative), so keying on all
# three makes collisions between distinct keys or inputs impossible;
# repeated verifications of the same certificate signature (every grab
# re-checks the one cert a host serves) become dictionary hits.
#
# Sizing: one full sweep of the simulated Internet performs ~7k
# private and ~15k public operations.  A cache smaller than that
# working set thrashes under FIFO eviction — every identical re-run
# (the bench suite replays the same sweep per backend) misses 100%,
# because the entries a run needs next are exactly the ones its own
# earlier inserts just evicted.  32k entries (a few tens of MB of
# ints) hold a whole sweep with headroom.
_CACHE_ENTRIES = 32768

_PUBLIC_OPS = KeyedOpCache("rsa-public-ops", maxsize=_CACHE_ENTRIES)
_PRIVATE_OPS = KeyedOpCache("rsa-private-ops", maxsize=_CACHE_ENTRIES)

# The simulator runs both endpoints in one process, so every RSA
# ciphertext is decrypted by the very process that just encrypted it.
# RSA is a bijection on [0, n): if this process computed
# ``c = pow(m, e, n)``, then ``m`` *is* the unique result of
# ``pow(c, d, n)`` — no private-key math needed.  Public operations
# therefore record ``(n, output) -> input`` here, and private
# operations consult it first.  The same table serves signing: a
# verification that computed ``pow(s, e, n) == m`` has recorded the
# unique signature ``s`` for ``m``.  Entries are only ever *exact*
# inverses, so a hit is byte-identical to the CRT computation.
_KNOWN_INVERSES = KeyedOpCache("rsa-known-inverses", maxsize=_CACHE_ENTRIES)


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, message: int) -> int:
        if not 0 <= message < self.n:
            raise ValueError("message representative out of range")
        key = (self.n, self.e, message)
        result = _PUBLIC_OPS.get(key)
        if result is None:
            result = pow(message, self.e, self.n)
            _PUBLIC_OPS.put(key, result)
        # Record the inverse pair: whoever holds the private key for
        # ``n`` can now invert ``result`` without any modular math.
        _KNOWN_INVERSES.put((self.n, self.e, result), message)
        return result

    # Signature verification is the same operation as encryption.
    raw_verify = raw_encrypt


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    e: int
    d: int
    p: int
    q: int

    def __post_init__(self):
        # Precompute CRT exponents once; frozen dataclass, so use
        # object.__setattr__ for the cached values.
        object.__setattr__(self, "_dp", self.d % (self.p - 1))
        object.__setattr__(self, "_dq", self.d % (self.q - 1))
        object.__setattr__(self, "_qinv", pow(self.q, -1, self.p))

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def raw_decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.n:
            raise ValueError("ciphertext representative out of range")
        # In-process round-trip: if this process produced ``ciphertext``
        # with our public key (the simulator always does — both
        # endpoints live here), its preimage is already known and is
        # the unique decryption.
        result = _KNOWN_INVERSES.get((self.n, self.e, ciphertext))
        if result is not None:
            return result
        key = (self.n, self.d, ciphertext)
        result = _PRIVATE_OPS.get(key)
        if result is None:
            m1 = pow(ciphertext, self._dp, self.p)
            m2 = pow(ciphertext, self._dq, self.q)
            h = (self._qinv * (m1 - m2)) % self.p
            result = m2 + h * self.q
            _PRIVATE_OPS.put(key, result)
        return result

    # Signing is the same operation as decryption.
    raw_sign = raw_decrypt


@dataclass(frozen=True)
class RsaKeyPair:
    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public_key()


def generate_rsa_key(
    bits: int, rng: random.Random, public_exponent: int = DEFAULT_PUBLIC_EXPONENT
) -> RsaKeyPair:
    """Generate an RSA key whose modulus has exactly ``bits`` bits."""
    if bits % 2:
        raise ValueError("modulus size must be even")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(public_exponent, phi) != 1:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(public_exponent, -1, phi)
        return RsaKeyPair(RsaPrivateKey(n=n, e=public_exponent, d=d, p=p, q=q))
