from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_namespace_different_stream(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_different_seed_different_stream(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(2, "x")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_substream_independent_of_parent_draws(self):
        parent_a = DeterministicRng(7, "root")
        parent_b = DeterministicRng(7, "root")
        parent_a.random()  # extra draw must not affect substream
        sub_a = parent_a.substream("child")
        sub_b = parent_b.substream("child")
        assert sub_a.random() == sub_b.random()

    def test_substream_namespace_path(self):
        rng = DeterministicRng(7, "root").substream("a").substream("b")
        assert rng.namespace == "root/a/b"


class TestHelpers:
    def test_token_bytes_length(self):
        rng = DeterministicRng(3)
        assert len(rng.token_bytes(32)) == 32

    def test_token_bytes_zero(self):
        assert DeterministicRng(3).token_bytes(0) == b""

    def test_token_bytes_deterministic(self):
        assert DeterministicRng(3).token_bytes(16) == DeterministicRng(3).token_bytes(16)

    def test_shuffled_preserves_input(self):
        rng = DeterministicRng(3)
        items = [1, 2, 3, 4, 5]
        out = rng.shuffled(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(out) == items
