"""The policy-negotiation seam: one object for a channel's security.

Everything a secure-channel handshake needs travels together here: the
``(policy, mode)`` pair being negotiated, the local certificate and
private key that sign the OpenSecureChannel chunk and the session
nonce proofs, and the peer certificate that encrypts toward the
remote side.  :class:`~repro.client.client.UaClient` threads one
:class:`ChannelSecurity` through OpenSecureChannel → CreateSession →
ActivateSession, and the scanner's secure re-grab builds one per
advertised endpoint — replacing the implicit None-only paths that
previously hard-wired ``policy=None`` everywhere above the framing
layer.

The module also owns the signature-algorithm URI table and the
nonce-proof sign/verify helpers that the client and the server engine
previously each kept a private copy of.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.secure.channel import ClientSecureChannel, SecureChannelError
from repro.secure.crypto_suite import asym_sign, asym_verify
from repro.secure.policies import POLICY_NONE, SecurityPolicy
from repro.uabin.enums import MessageSecurityMode
from repro.uabin.types_common import SignatureData
from repro.x509.certificate import Certificate, parse_certificate

#: AsymmetricSignatureAlgorithm URIs per policy signature scheme
#: (OPC 10000-7); shared by the client's ActivateSession proof and the
#: server's CreateSession proof.
SIGNATURE_ALG_URIS = {
    "pkcs1-sha1": "http://www.w3.org/2000/09/xmldsig#rsa-sha1",
    "pkcs1-sha256": "http://www.w3.org/2001/04/xmldsig-more#rsa-sha256",
    "pss-sha256": "http://opcfoundation.org/UA/security/rsa-pss-sha2-256",
}

#: Modes a secure (non-None) policy may be negotiated at.
SECURE_MODES = (
    MessageSecurityMode.SIGN,
    MessageSecurityMode.SIGN_AND_ENCRYPT,
)


def signature_algorithm_uri(policy: SecurityPolicy) -> str | None:
    """The nonce-proof signature algorithm URI for ``policy``."""
    if policy.asym_signature is None:
        return None
    return SIGNATURE_ALG_URIS[policy.asym_signature]


def sign_nonce_proof(
    policy: SecurityPolicy, private_key, data: bytes, rng: random.Random
) -> SignatureData:
    """Sign a certificate+nonce proof (CreateSession/ActivateSession)."""
    return SignatureData(
        algorithm=signature_algorithm_uri(policy),
        signature=asym_sign(policy, private_key, data, rng),
    )


def verify_nonce_proof(
    policy: SecurityPolicy,
    certificate: Certificate,
    data: bytes,
    proof: SignatureData | None,
) -> bool:
    """Check a peer's certificate+nonce proof signature."""
    if proof is None or not proof.signature:
        return False
    expected = signature_algorithm_uri(policy)
    if proof.algorithm is not None and proof.algorithm != expected:
        return False
    return asym_verify(policy, certificate.public_key, data, proof.signature)


@dataclass(frozen=True)
class ChannelSecurity:
    """Negotiated security of one channel: policy, mode, and key material.

    ``local_certificate``/``local_private_key`` identify *this* side
    (they sign outgoing OPN chunks and nonce proofs);
    ``peer_certificate`` is the remote side's certificate (it encrypts
    toward the peer and verifies the peer's proofs).  For the None
    policy all three stay unset.
    """

    policy: SecurityPolicy
    mode: MessageSecurityMode
    local_certificate: Certificate | None = None
    local_private_key: object = None
    peer_certificate: Certificate | None = None

    def __post_init__(self):
        if self.policy is POLICY_NONE:
            if self.mode != MessageSecurityMode.NONE:
                raise SecureChannelError(
                    "policy None requires security mode None"
                )
            return
        if self.mode not in SECURE_MODES:
            raise SecureChannelError(
                f"policy {self.policy.name} requires Sign or "
                f"SignAndEncrypt, got {self.mode.name}"
            )
        if self.local_certificate is None or self.local_private_key is None:
            raise SecureChannelError(
                "secure policies need the local certificate and key"
            )
        if self.peer_certificate is None:
            raise SecureChannelError(
                "secure policies need the peer certificate"
            )

    # --- constructors ---------------------------------------------------------

    @classmethod
    def none(cls) -> "ChannelSecurity":
        """The discovery configuration: policy None, mode None."""
        return cls(POLICY_NONE, MessageSecurityMode.NONE)

    @classmethod
    def for_endpoint(
        cls,
        policy: SecurityPolicy,
        mode: MessageSecurityMode,
        identity,
        server_certificate_der: bytes | None,
    ) -> "ChannelSecurity":
        """Security for one advertised endpoint, from the client side.

        ``identity`` is anything carrying ``certificate``/``private_key``
        (a :class:`~repro.client.client.ClientIdentity`);
        ``server_certificate_der`` is the certificate the endpoint
        advertised.
        """
        if policy is POLICY_NONE:
            return cls.none()
        if server_certificate_der is None:
            raise SecureChannelError(
                "secure policies need the server certificate"
            )
        return cls(
            policy,
            mode,
            local_certificate=identity.certificate,
            local_private_key=identity.private_key,
            peer_certificate=parse_certificate(server_certificate_der),
        )

    # --- derived views --------------------------------------------------------

    @property
    def is_secure(self) -> bool:
        return self.policy is not POLICY_NONE

    @property
    def peer_certificate_der(self) -> bytes | None:
        if self.peer_certificate is None:
            return None
        return self.peer_certificate.raw_der

    def client_channel(self, rng: random.Random) -> ClientSecureChannel:
        """Build the client channel half this security describes."""
        return ClientSecureChannel(
            self.policy,
            self.mode,
            rng,
            client_certificate=self.local_certificate,
            client_private_key=self.local_private_key,
            server_certificate=self.peer_certificate,
        )

    # --- nonce proofs ---------------------------------------------------------

    def sign_proof(self, data: bytes, rng: random.Random) -> SignatureData:
        """Sign ``data`` with the local key (ActivateSession proof)."""
        return sign_nonce_proof(self.policy, self.local_private_key, data, rng)

    def verify_peer_proof(self, data: bytes, proof: SignatureData | None) -> bool:
        """Verify the peer's proof over ``data`` (CreateSession reply)."""
        if self.peer_certificate is None:
            return False
        return verify_nonce_proof(self.policy, self.peer_certificate, data, proof)
