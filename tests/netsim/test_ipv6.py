import pytest
from hypothesis import given, strategies as st

from repro.netsim.blocklist import Blocklist
from repro.netsim.ipv6 import (
    Ipv6Block,
    sweep_hitlist,
)
from repro.util.ipaddr import format_ipv6, parse_ipv6
from repro.netsim.net import SimHost, SimNetwork
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc


class TestParseFormat:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            (
                "2001:db8::1:2",
                (0x20010DB8 << 96) | (1 << 16) | 2,
            ),
            (
                "1:2:3:4:5:6:7:8",
                (1 << 112) | (2 << 96) | (3 << 80) | (4 << 64)
                | (5 << 48) | (6 << 32) | (7 << 16) | 8,
            ),
        ],
    )
    def test_parse(self, text, value):
        assert parse_ipv6(text) == value

    @pytest.mark.parametrize(
        "bad", ["", ":::", "1::2::3", "12345::", "g::", "1:2:3"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_ipv6(bad)

    def test_format_compresses(self):
        assert format_ipv6(1) == "::1"
        assert format_ipv6(0) == "::"
        assert format_ipv6(0x20010DB8 << 96) == "2001:db8::"

    def test_format_longest_run(self):
        value = parse_ipv6("1:0:0:2:0:0:0:3")
        assert format_ipv6(value) == "1:0:0:2::3"

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv6(2**128)

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_round_trip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value


class TestIpv6Block:
    def test_membership(self):
        block = Ipv6Block.parse("2001:db8::/32")
        assert parse_ipv6("2001:db8::42") in block
        assert parse_ipv6("2001:db9::") not in block

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Ipv6Block(parse_ipv6("2001:db8::1"), 32)

    def test_address_at(self):
        block = Ipv6Block.parse("2001:db8::/64")
        assert block.address_at(5) == parse_ipv6("2001:db8::5")
        with pytest.raises(IndexError):
            block.address_at(2**64)


class TestHitlistSweep:
    class Echo:
        closed = False

        def receive(self, data):
            return data

    def make_network(self):
        network = SimNetwork(SimClock(parse_utc("2020-08-30")))
        host = SimHost(address=parse_ipv6("2001:db8::10"), asn=64700)
        host.listen(4840, self.Echo)
        network.add_host(host)
        return network

    def test_finds_host_on_hitlist(self):
        network = self.make_network()
        hitlist = [parse_ipv6("2001:db8::10"), parse_ipv6("2001:db8::99")]
        result = sweep_hitlist(network, 4840, hitlist, DeterministicRng(1, "h"))
        assert result.open_addresses == [parse_ipv6("2001:db8::10")]
        assert result.probed == 2

    def test_misses_host_not_on_hitlist(self):
        network = self.make_network()
        result = sweep_hitlist(
            network, 4840, [parse_ipv6("2001:db8::99")], DeterministicRng(1, "h")
        )
        assert result.open_addresses == []

    def test_blocklist_respected(self):
        network = self.make_network()
        blocklist = Blocklist()
        blocklist.add_raw_range(
            parse_ipv6("2001:db8::"), parse_ipv6("2001:db8::ffff")
        )
        result = sweep_hitlist(
            network,
            4840,
            [parse_ipv6("2001:db8::10")],
            DeterministicRng(1, "h"),
            blocklist,
        )
        assert result.excluded == 1
        assert result.open_addresses == []


class TestDualStack:
    def test_ipv6_hosts_serve_same_config(self, rsa_2048):
        from repro.deployments.dualstack import enable_ipv6
        from repro.deployments.population import PopulationBuilder, install_hosts
        from repro.deployments.spec import PopulationSpec, build_default_spec

        spec = build_default_spec()
        mini = PopulationSpec(rows=spec.rows[:3])
        builder = PopulationBuilder(mini, seed=20200830)
        hosts = builder.build_hosts()
        network = SimNetwork(SimClock(parse_utc("2020-08-30")))
        install_hosts(network, hosts)
        plan = enable_ipv6(
            hosts, network, DeterministicRng(2, "v6"), fraction=0.5
        )
        assert plan.host_count > 0
        # The IPv6 listener answers with the identical server.
        some_index, address = next(iter(plan.addresses.items()))
        assert network.syn(address, 4840)
