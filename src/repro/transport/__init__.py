"""OPC UA TCP transport (OPC 10000-6 §7): message framing and chunking.

The binary interface on TCP/4840 frames every message with a 3-letter
type, a chunk marker, and a length; connections start with a
Hello/Acknowledge exchange.  This layer is deliberately independent of
the secure-channel crypto — it moves opaque chunks.
"""

from repro.transport.messages import (
    AcknowledgeMessage,
    ErrorMessage,
    HelloMessage,
    MessageHeader,
    MessageType,
    TransportError,
    TransportTimeout,
)
from repro.transport.chunks import (
    ChunkAssembler,
    ChunkType,
    split_into_chunks,
)
from repro.transport.connection import FrameReader, encode_frame
from repro.transport.socket_io import (
    AsyncSocketTransport,
    BlockingSocketTransport,
    Transport,
    WallClock,
    connect_blocking,
    shared_io_loop,
)
from repro.transport.capture import (
    CaptureCorpus,
    CaptureFormatError,
    CaptureNetwork,
    CaptureRecorder,
    CaptureTransport,
    TargetCapture,
    read_corpus,
    write_corpus,
)
from repro.transport.replay import (
    ReplayError,
    ReplayMismatch,
    ReplayNetwork,
    ReplayTransport,
)

__all__ = [
    "AcknowledgeMessage",
    "AsyncSocketTransport",
    "BlockingSocketTransport",
    "CaptureCorpus",
    "CaptureFormatError",
    "CaptureNetwork",
    "CaptureRecorder",
    "CaptureTransport",
    "ChunkAssembler",
    "ChunkType",
    "ErrorMessage",
    "FrameReader",
    "HelloMessage",
    "MessageHeader",
    "MessageType",
    "ReplayError",
    "ReplayMismatch",
    "ReplayNetwork",
    "ReplayTransport",
    "TargetCapture",
    "Transport",
    "TransportError",
    "TransportTimeout",
    "WallClock",
    "connect_blocking",
    "encode_frame",
    "read_corpus",
    "shared_io_loop",
    "split_into_chunks",
    "write_corpus",
]
