"""Negotiated-security golden study: secure channels, digest-pinned.

The tiny study (``tiny_study.digest.json``) is deliberately None-only,
so nothing in it exercises Sign/SignAndEncrypt negotiation.  This
suite pins the complementary population: every host advertises a
secure endpoint, every deep grab runs the secure re-grab, and the
``negotiated_*`` session fields land in the canonical record bytes —
identically across all four executor backends.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.negotiation import analyze_negotiated_security
from repro.core.golden import (
    run_tiny_secure_study,
    study_digest,
    study_digests,
    tiny_secure_spec,
)

pytestmark = pytest.mark.golden

NEGOTIATED_PATH = Path(__file__).resolve().parent / "negotiated.digest.json"

BACKENDS = [
    pytest.param("thread", 4, id="thread"),
    pytest.param("process", 4, id="process"),
    pytest.param("async", 8, id="async"),
]


@pytest.fixture(scope="module")
def negotiated_digests() -> dict:
    return json.loads(NEGOTIATED_PATH.read_text())


@pytest.fixture(scope="module")
def serial_secure_result():
    return run_tiny_secure_study()


def test_serial_matches_committed_digest(
    serial_secure_result, negotiated_digests
):
    per_sweep = study_digests(serial_secure_result)
    assert per_sweep == negotiated_digests["per_sweep"]
    assert study_digest(serial_secure_result) == negotiated_digests["digest"]


@pytest.mark.parametrize("backend,workers", BACKENDS)
def test_backend_matches_serial_reference(
    backend, workers, serial_secure_result, negotiated_digests
):
    result = run_tiny_secure_study(backend, workers)
    per_sweep = study_digests(result)
    assert per_sweep == study_digests(serial_secure_result), (
        f"{backend} backend diverged from the serial reference"
    )
    assert per_sweep == negotiated_digests["per_sweep"]
    assert study_digest(result) == negotiated_digests["digest"]


def test_every_grab_negotiated_or_failed_truthfully(serial_secure_result):
    """Each server either completed the best advertised pair or
    recorded why it could not — no silent gaps."""
    servers = serial_secure_result.final_snapshot.servers()
    assert servers
    for record in servers:
        session = record.session
        assert session is not None
        negotiated = session.negotiated_policy_uri is not None
        failed = session.negotiation_error is not None
        assert negotiated != failed, (
            f"host {record.ip}: negotiation neither completed nor failed"
        )
        if negotiated:
            assert session.negotiated_mode in (2, 3)


def test_statistics_match_spec_ground_truth(serial_secure_result):
    """The registry analysis reproduces the spec's expectations for
    every host observed in the final sweep (churned-away hosts are
    absent from the snapshot, so counts are compared per-pair)."""
    stats = analyze_negotiated_security(
        serial_secure_result.final_snapshot.servers()
    )
    expected = tiny_secure_spec().negotiation_expectations()
    assert stats.none_only == 0
    assert stats.unattempted == 0
    assert stats.attempted == stats.total_servers
    # Every completed negotiation landed on the best advertised pair.
    assert stats.matched_best_advertised == stats.negotiated
    # Failures are exactly the strict-server rejections.
    assert set(stats.errors) == {"BadSecurityChecksFailed"}
    assert stats.failed <= expected["failed"]
    # Observed pairs are a subset of the spec's expected pairs.
    expected_policies = {
        label for (label, _mode) in expected["by_pair"]
    }
    short = {"Basic128Rsa15": "D1", "Basic256": "D2",
             "Aes128_Sha256_RsaOaep": "S1", "Basic256Sha256": "S2",
             "Aes256_Sha256_RsaPss": "S3"}
    assert set(stats.by_policy) <= {short[p] for p in expected_policies}
    assert set(stats.by_mode) <= {"S", "S&E"}
