"""The six OPC UA security policies (paper Table 1).

Each policy pins the complete cryptographic suite of a secure channel:
the asymmetric algorithms used during OpenSecureChannel, the symmetric
algorithms used for session traffic, the nonce length feeding key
derivation, and the certificate requirements (signature hash and RSA
key-length range).  The ``deprecated``/``secure`` flags encode the
official recommendation the paper assesses servers against: None gives
no security, Basic128Rsa15 and Basic256 were deprecated in 2017 for
their SHA-1 dependence, and the three SHA-256 policies are current.
"""

from __future__ import annotations

from dataclasses import dataclass

_BASE_URI = "http://opcfoundation.org/UA/SecurityPolicy#"


@dataclass(frozen=True)
class SecurityPolicy:
    """Cryptographic suite definition for one security policy."""

    name: str
    uri: str
    short_label: str  # N / D1 / D2 / S1 / S2 / S3 as in the paper
    # Asymmetric suite (OpenSecureChannel protection).
    asym_encryption: str | None  # "rsa15" | "oaep-sha1" | "oaep-sha256"
    asym_signature: str | None  # "pkcs1-sha1" | "pkcs1-sha256" | "pss-sha256"
    # Symmetric suite (session traffic protection).
    sym_signature_hash: str | None  # HMAC hash
    sym_signature_key_len: int
    sym_encryption_key_len: int
    sym_block_size: int
    derivation_hash: str | None  # P_SHA1 vs P_SHA256
    nonce_length: int
    # Certificate requirements.
    certificate_hash: tuple[str, ...]  # allowed signature hashes
    min_key_bits: int
    max_key_bits: int
    # Recommendation classification.
    is_deprecated: bool
    provides_security: bool
    security_rank: int  # ordering for least/most secure comparisons

    @property
    def is_secure_and_current(self) -> bool:
        return self.provides_security and not self.is_deprecated

    @property
    def signature_length(self) -> int:
        """Length of the symmetric HMAC signature appended to chunks."""
        if self.sym_signature_hash == "sha1":
            return 20
        if self.sym_signature_hash == "sha256":
            return 32
        return 0

    def key_bits_in_range(self, bits: int) -> bool:
        return self.min_key_bits <= bits <= self.max_key_bits

    def __str__(self) -> str:
        return self.name


POLICY_NONE = SecurityPolicy(
    name="None",
    uri=_BASE_URI + "None",
    short_label="N",
    asym_encryption=None,
    asym_signature=None,
    sym_signature_hash=None,
    sym_signature_key_len=0,
    sym_encryption_key_len=0,
    sym_block_size=0,
    derivation_hash=None,
    nonce_length=0,
    certificate_hash=(),
    min_key_bits=0,
    max_key_bits=0,
    is_deprecated=False,
    provides_security=False,
    security_rank=0,
)

POLICY_BASIC128RSA15 = SecurityPolicy(
    name="Basic128Rsa15",
    uri=_BASE_URI + "Basic128Rsa15",
    short_label="D1",
    asym_encryption="rsa15",
    asym_signature="pkcs1-sha1",
    sym_signature_hash="sha1",
    sym_signature_key_len=16,
    sym_encryption_key_len=16,
    sym_block_size=16,
    derivation_hash="sha1",
    nonce_length=16,
    certificate_hash=("sha1",),
    min_key_bits=1024,
    max_key_bits=2048,
    is_deprecated=True,
    provides_security=True,
    security_rank=1,
)

POLICY_BASIC256 = SecurityPolicy(
    name="Basic256",
    uri=_BASE_URI + "Basic256",
    short_label="D2",
    asym_encryption="oaep-sha1",
    asym_signature="pkcs1-sha1",
    sym_signature_hash="sha1",
    sym_signature_key_len=24,
    sym_encryption_key_len=32,
    sym_block_size=16,
    derivation_hash="sha1",
    nonce_length=32,
    certificate_hash=("sha1", "sha256"),
    min_key_bits=1024,
    max_key_bits=2048,
    is_deprecated=True,
    provides_security=True,
    security_rank=2,
)

POLICY_AES128_SHA256_RSAOAEP = SecurityPolicy(
    name="Aes128_Sha256_RsaOaep",
    uri=_BASE_URI + "Aes128_Sha256_RsaOaep",
    short_label="S1",
    asym_encryption="oaep-sha1",
    asym_signature="pkcs1-sha256",
    sym_signature_hash="sha256",
    sym_signature_key_len=32,
    sym_encryption_key_len=16,
    sym_block_size=16,
    derivation_hash="sha256",
    nonce_length=32,
    certificate_hash=("sha256",),
    min_key_bits=2048,
    max_key_bits=4096,
    is_deprecated=False,
    provides_security=True,
    security_rank=3,
)

POLICY_BASIC256SHA256 = SecurityPolicy(
    name="Basic256Sha256",
    uri=_BASE_URI + "Basic256Sha256",
    short_label="S2",
    asym_encryption="oaep-sha1",
    asym_signature="pkcs1-sha256",
    sym_signature_hash="sha256",
    sym_signature_key_len=32,
    sym_encryption_key_len=32,
    sym_block_size=16,
    derivation_hash="sha256",
    nonce_length=32,
    certificate_hash=("sha256",),
    min_key_bits=2048,
    max_key_bits=4096,
    is_deprecated=False,
    provides_security=True,
    security_rank=4,
)

POLICY_AES256_SHA256_RSAPSS = SecurityPolicy(
    name="Aes256_Sha256_RsaPss",
    uri=_BASE_URI + "Aes256_Sha256_RsaPss",
    short_label="S3",
    asym_encryption="oaep-sha256",
    asym_signature="pss-sha256",
    sym_signature_hash="sha256",
    sym_signature_key_len=32,
    sym_encryption_key_len=32,
    sym_block_size=16,
    derivation_hash="sha256",
    nonce_length=32,
    certificate_hash=("sha256",),
    min_key_bits=2048,
    max_key_bits=4096,
    is_deprecated=False,
    provides_security=True,
    security_rank=5,
)

ALL_POLICIES: tuple[SecurityPolicy, ...] = (
    POLICY_NONE,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256,
    POLICY_AES128_SHA256_RSAOAEP,
    POLICY_BASIC256SHA256,
    POLICY_AES256_SHA256_RSAPSS,
)

DEPRECATED_POLICIES = (POLICY_BASIC128RSA15, POLICY_BASIC256)
SECURE_POLICIES = (
    POLICY_AES128_SHA256_RSAOAEP,
    POLICY_BASIC256SHA256,
    POLICY_AES256_SHA256_RSAPSS,
)

_BY_URI = {policy.uri: policy for policy in ALL_POLICIES}
_BY_LABEL = {policy.short_label: policy for policy in ALL_POLICIES}
_BY_NAME = {policy.name: policy for policy in ALL_POLICIES}


def policy_by_uri(uri: str | None) -> SecurityPolicy:
    """Resolve a policy URI; raises KeyError for unknown URIs."""
    if uri is None:
        raise KeyError("security policy URI is missing")
    try:
        return _BY_URI[uri]
    except KeyError:
        raise KeyError(f"unknown security policy URI: {uri!r}") from None


def policy_by_label(label: str) -> SecurityPolicy:
    """Resolve the paper's shorthand (N, D1, D2, S1, S2, S3) or a name."""
    if label in _BY_LABEL:
        return _BY_LABEL[label]
    if label in _BY_NAME:
        return _BY_NAME[label]
    raise KeyError(f"unknown security policy label: {label!r}")
