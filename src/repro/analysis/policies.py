"""§5.1 — advertised security policies (Figure 3, right).

Counts supported / least-secure / most-secure per policy, plus the
derived headline numbers: servers enforcing strong policies (16),
servers still supporting deprecated SHA-1 policies (786), and servers
whose best option is deprecated (280).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.records import HostRecord
from repro.secure.policies import (
    ALL_POLICIES,
    DEPRECATED_POLICIES,
    SECURE_POLICIES,
    SecurityPolicy,
    policy_by_uri,
)


@dataclass
class PolicyStatistics:
    total_servers: int = 0
    supported: dict[str, int] = field(default_factory=dict)
    least_secure: dict[str, int] = field(default_factory=dict)
    most_secure: dict[str, int] = field(default_factory=dict)
    supports_deprecated: int = 0  # D1 ∪ D2 (paper: 786)
    deprecated_as_best: int = 0  # most secure ∈ {D1, D2} (paper: 280)
    enforce_secure: int = 0  # least secure ∈ {S1, S2, S3} (paper: 16)
    secure_available: int = 0  # most secure ∈ {S1, S2, S3} (paper: 564)


def record_policies(record: HostRecord) -> set[SecurityPolicy]:
    policies = set()
    for uri in record.security_policy_uris():
        try:
            policies.add(policy_by_uri(uri))
        except KeyError:
            continue
    return policies


def analyze_security_policies(records: list[HostRecord]) -> PolicyStatistics:
    labels = [p.short_label for p in ALL_POLICIES]
    stats = PolicyStatistics(
        supported={label: 0 for label in labels},
        least_secure={label: 0 for label in labels},
        most_secure={label: 0 for label in labels},
    )
    deprecated = set(DEPRECATED_POLICIES)
    secure = set(SECURE_POLICIES)
    for record in records:
        policies = record_policies(record)
        if not policies:
            continue
        stats.total_servers += 1
        for policy in policies:
            stats.supported[policy.short_label] += 1
        weakest = min(policies, key=lambda p: p.security_rank)
        strongest = max(policies, key=lambda p: p.security_rank)
        stats.least_secure[weakest.short_label] += 1
        stats.most_secure[strongest.short_label] += 1
        if policies & deprecated:
            stats.supports_deprecated += 1
        if strongest in deprecated:
            stats.deprecated_as_best += 1
        if weakest in secure:
            stats.enforce_secure += 1
        if strongest in secure:
            stats.secure_available += 1
    return stats
