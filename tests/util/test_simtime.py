from datetime import datetime, timezone

import pytest

from repro.util.simtime import (
    SimClock,
    datetime_to_filetime,
    filetime_to_datetime,
    format_utc,
    parse_utc,
)


class TestParseFormat:
    def test_parse_date_only(self):
        moment = parse_utc("2020-08-30")
        assert moment == datetime(2020, 8, 30, tzinfo=timezone.utc)

    def test_parse_with_time(self):
        moment = parse_utc("2020-08-30T12:30:00")
        assert moment.hour == 12

    def test_parse_with_zulu_suffix(self):
        assert parse_utc("2030-01-01T00:00:00Z") == datetime(
            2030, 1, 1, tzinfo=timezone.utc
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_utc("yesterday")

    def test_format_round_trip(self):
        text = "2020-05-04T01:02:03"
        assert format_utc(parse_utc(text)) == text


class TestFiletime:
    def test_unix_epoch(self):
        epoch = datetime(1970, 1, 1, tzinfo=timezone.utc)
        assert datetime_to_filetime(epoch) == 116444736000000000

    def test_round_trip(self):
        moment = datetime(2020, 8, 30, 13, 37, 21, tzinfo=timezone.utc)
        assert filetime_to_datetime(datetime_to_filetime(moment)) == moment

    def test_ordering_preserved(self):
        a = parse_utc("2020-02-09")
        b = parse_utc("2020-08-30")
        assert datetime_to_filetime(a) < datetime_to_filetime(b)


class TestSimClock:
    def test_advance(self):
        clock = SimClock(parse_utc("2020-02-09"))
        clock.advance(3600)
        assert clock.now() == parse_utc("2020-02-09T01:00:00")

    def test_advance_negative_rejected(self):
        clock = SimClock(parse_utc("2020-02-09"))
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_set_to_backwards_rejected(self):
        clock = SimClock(parse_utc("2020-02-09"))
        with pytest.raises(ValueError):
            clock.set_to(parse_utc("2020-01-01"))

    def test_naive_datetime_rejected(self):
        with pytest.raises(ValueError):
            SimClock(datetime(2020, 1, 1))
