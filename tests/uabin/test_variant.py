from datetime import datetime, timezone

import pytest
from hypothesis import given, strategies as st

from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCodes
from repro.uabin.variant import DataValue, Variant, VariantType
from repro.util.binary import BinaryReader, BinaryWriter


def round_trip(value):
    w = BinaryWriter()
    value.encode(w)
    r = BinaryReader(w.to_bytes())
    out = type(value).decode(r)
    assert r.at_end()
    return out


class TestVariantScalars:
    @pytest.mark.parametrize(
        "variant",
        [
            Variant(True, VariantType.BOOLEAN),
            Variant(42, VariantType.INT32),
            Variant(42, VariantType.UINT64),
            Variant(1.5, VariantType.DOUBLE),
            Variant("m3InflowPerHour", VariantType.STRING),
            Variant(b"\x01", VariantType.BYTESTRING),
            Variant(NodeId(2, 5), VariantType.NODEID),
            Variant(StatusCodes.Good, VariantType.STATUSCODE),
            Variant(QualifiedName(1, "n"), VariantType.QUALIFIEDNAME),
            Variant(LocalizedText("t"), VariantType.LOCALIZEDTEXT),
            Variant(
                datetime(2020, 5, 4, tzinfo=timezone.utc), VariantType.DATETIME
            ),
        ],
    )
    def test_round_trip(self, variant):
        assert round_trip(variant) == variant

    def test_null_variant(self):
        v = Variant()
        w = BinaryWriter()
        v.encode(w)
        assert w.to_bytes() == b"\x00"
        assert round_trip(v).value is None

    def test_type_inference_int(self):
        assert Variant(5).resolved_type() == VariantType.INT64

    def test_type_inference_bool_before_int(self):
        assert Variant(True).resolved_type() == VariantType.BOOLEAN

    def test_type_inference_string(self):
        assert Variant("x").resolved_type() == VariantType.STRING

    def test_type_inference_float(self):
        assert Variant(0.5).resolved_type() == VariantType.DOUBLE

    def test_inference_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            Variant(object()).resolved_type()


class TestVariantArrays:
    def test_int_array(self):
        v = Variant([1, 2, 3], VariantType.INT32, is_array=True)
        out = round_trip(v)
        assert out.value == [1, 2, 3]
        assert out.is_array

    def test_string_array_with_nulls(self):
        v = Variant(["a", None, "c"], VariantType.STRING, is_array=True)
        assert round_trip(v).value == ["a", None, "c"]

    def test_array_bit_set(self):
        v = Variant([1], VariantType.INT32, is_array=True)
        w = BinaryWriter()
        v.encode(w)
        assert w.to_bytes()[0] & 0x80

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=20))
    def test_double_array_property(self, values):
        v = Variant(values, VariantType.DOUBLE, is_array=True)
        assert round_trip(v).value == values


class TestDataValue:
    def test_empty(self):
        assert round_trip(DataValue()) == DataValue()

    def test_value_only(self):
        dv = DataValue(value=Variant(7, VariantType.INT32))
        assert round_trip(dv) == dv

    def test_status_only(self):
        dv = DataValue(status=StatusCodes.BadNotReadable)
        assert round_trip(dv) == dv

    def test_full(self):
        moment = datetime(2020, 8, 30, tzinfo=timezone.utc)
        dv = DataValue(
            value=Variant("v", VariantType.STRING),
            status=StatusCodes.Good,
            source_timestamp=moment,
            server_timestamp=moment,
        )
        assert round_trip(dv) == dv

    def test_mask_byte_minimal(self):
        w = BinaryWriter()
        DataValue().encode(w)
        assert w.to_bytes() == b"\x00"
