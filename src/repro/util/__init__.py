"""Shared low-level utilities: binary I/O, deterministic RNG, IPv4 math.

These helpers underpin every other subsystem (the OPC UA codec, the
crypto stack, and the internet simulation) and deliberately avoid any
dependency beyond the standard library.
"""

from repro.util.binary import BinaryReader, BinaryWriter, NotEnoughData
from repro.util.ipaddr import (
    CidrBlock,
    format_address,
    format_endpoint_host,
    format_ipv4,
    format_ipv6,
    ipv4_in_block,
    parse_ipv4,
    parse_ipv6,
)
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, UTC_EPOCH_2020, parse_utc, format_utc

__all__ = [
    "BinaryReader",
    "BinaryWriter",
    "NotEnoughData",
    "CidrBlock",
    "DeterministicRng",
    "SimClock",
    "UTC_EPOCH_2020",
    "format_address",
    "format_endpoint_host",
    "format_ipv4",
    "format_ipv6",
    "format_utc",
    "ipv4_in_block",
    "parse_ipv4",
    "parse_ipv6",
    "parse_utc",
]
