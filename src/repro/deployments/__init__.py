"""Ground-truth deployment population.

Builds the simulated Internet the study scans: ~1900 OPC UA hosts
whose *joint* configuration distribution encodes every number the
paper published (Figures 2-8, Tables 1-2, and the longitudinal
statistics of §5.5).  The scanner never sees this package's ground
truth — it measures the resulting servers over the wire.
"""

from repro.deployments.keyfactory import KeyFactory
from repro.deployments.manufacturers import (
    MANUFACTURERS,
    Manufacturer,
    manufacturer_by_name,
)
from repro.deployments.profiles import (
    CERT_CLASSES,
    CertClass,
    MODE_SETS_BY_GROUP,
    POLICY_GROUPS,
    PolicyGroup,
)
from repro.deployments.spec import (
    PAPER_TOTALS,
    PopulationSpec,
    SpecRow,
    build_default_spec,
)
from repro.deployments.population import BuiltHost, PopulationBuilder
from repro.deployments.evolution import StudyTimeline, SWEEP_DATES

__all__ = [
    "BuiltHost",
    "CERT_CLASSES",
    "CertClass",
    "KeyFactory",
    "MANUFACTURERS",
    "MODE_SETS_BY_GROUP",
    "Manufacturer",
    "PAPER_TOTALS",
    "POLICY_GROUPS",
    "PolicyGroup",
    "PopulationBuilder",
    "PopulationSpec",
    "SWEEP_DATES",
    "SpecRow",
    "StudyTimeline",
    "build_default_spec",
    "manufacturer_by_name",
]
