"""§5.5 and Figure 2 — longitudinal development across the sweeps.

Computes per-sweep host counts by manufacturer (Figure 2's stacked
series), the deficient fraction per sweep (the paper's avg 92 %,
std 0.8 pp), certificate renewals on hosts with stable addresses
(including hash upgrades/downgrades and coinciding software updates),
and the certificate-age statistics over all certificates collected in
the study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.analysis.deficits import analyze_deficits
from repro.deployments.manufacturers import classify_application_uri
from repro.scanner.records import MeasurementSnapshot

SHA1_DEPRECATION_CUTOFF = datetime(2017, 5, 1, tzinfo=timezone.utc)
RECENT_CUTOFF = datetime(2019, 1, 1, tzinfo=timezone.utc)


@dataclass
class SweepSummary:
    date: str
    total_reachable: int
    discovery_servers: int
    servers: int
    by_manufacturer: dict[str, int]
    via_reference: int
    non_default_port: int
    deficient: int

    @property
    def deficient_fraction(self) -> float:
        return self.deficient / self.servers if self.servers else 0.0


@dataclass
class RenewalObservation:
    ip: int
    port: int
    sweep_date: str
    old_hash: str
    new_hash: str
    software_updated: bool

    @property
    def is_upgrade(self) -> bool:
        return self.old_hash == "sha1" and self.new_hash == "sha256"

    @property
    def is_downgrade(self) -> bool:
        return self.old_hash == "sha256" and self.new_hash == "sha1"


@dataclass
class LongitudinalAnalysis:
    sweeps: list[SweepSummary] = field(default_factory=list)
    renewals: list[RenewalObservation] = field(default_factory=list)
    distinct_certificates: int = 0
    sha1_certificates: int = 0
    sha1_after_deprecation: int = 0
    sha1_after_2019: int = 0
    reuse_family_counts: list[int] = field(default_factory=list)

    @property
    def deficient_fractions(self) -> list[float]:
        return [s.deficient_fraction for s in self.sweeps]

    @property
    def avg_deficient_fraction(self) -> float:
        fractions = self.deficient_fractions
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def std_deficient_fraction(self) -> float:
        fractions = self.deficient_fractions
        if len(fractions) < 2:
            return 0.0
        mean = self.avg_deficient_fraction
        return (sum((f - mean) ** 2 for f in fractions) / len(fractions)) ** 0.5

    @property
    def renewal_count(self) -> int:
        return len(self.renewals)

    @property
    def upgrades(self) -> int:
        return sum(1 for r in self.renewals if r.is_upgrade)

    @property
    def downgrades(self) -> int:
        return sum(1 for r in self.renewals if r.is_downgrade)

    @property
    def renewals_with_software_update(self) -> int:
        return sum(1 for r in self.renewals if r.software_updated)


def analyze_longitudinal(
    snapshots: list[MeasurementSnapshot],
) -> LongitudinalAnalysis:
    analysis = LongitudinalAnalysis()
    seen_certificates: dict[str, object] = {}

    for snapshot in snapshots:
        servers = snapshot.servers()
        deficits = analyze_deficits(servers)
        by_manufacturer: dict[str, int] = {}
        for record in servers:
            name = classify_application_uri(record.application_uri)
            by_manufacturer[name] = by_manufacturer.get(name, 0) + 1
        discovery = snapshot.discovery_servers()
        analysis.sweeps.append(
            SweepSummary(
                date=snapshot.date,
                total_reachable=len(snapshot.reachable()),
                discovery_servers=len(discovery),
                servers=len(servers),
                by_manufacturer=by_manufacturer,
                via_reference=sum(
                    1 for r in snapshot.reachable() if r.via_reference
                ),
                non_default_port=sum(
                    1 for r in snapshot.reachable() if r.port != 4840
                ),
                deficient=deficits.deficient,
            )
        )
        for record in servers:
            if record.certificate is not None:
                seen_certificates.setdefault(
                    record.certificate.thumbprint_hex, record.certificate
                )
        analysis.reuse_family_counts.append(_reuse_family_size(servers))

    analysis.distinct_certificates = len(seen_certificates)
    for certificate in seen_certificates.values():
        if certificate.signature_hash != "sha1":
            continue
        analysis.sha1_certificates += 1
        minted = certificate.not_before_dt()
        if minted >= SHA1_DEPRECATION_CUTOFF:
            analysis.sha1_after_deprecation += 1
        if minted >= RECENT_CUTOFF:
            analysis.sha1_after_2019 += 1

    analysis.renewals = _detect_renewals(snapshots)
    return analysis


def _reuse_family_size(servers) -> int:
    """Devices of the worst-affected manufacturer sharing certificates.

    §5.5 tracks the manufacturer whose certificates appear identically
    on many devices (263 → 387 over the study): count hosts in
    ≥3-host reuse groups whose certificate subject matches the largest
    group's subject.
    """
    counts: dict[str, int] = {}
    subjects: dict[str, str] = {}
    for record in servers:
        if record.certificate is not None:
            thumb = record.certificate.thumbprint_hex
            counts[thumb] = counts.get(thumb, 0) + 1
            subjects[thumb] = record.certificate.subject
    big_groups = {t: c for t, c in counts.items() if c >= 3}
    if not big_groups:
        return 0
    largest = max(big_groups, key=big_groups.get)
    family_subject = subjects[largest]
    return sum(
        count
        for thumb, count in big_groups.items()
        if subjects[thumb] == family_subject
    )


def _detect_renewals(
    snapshots: list[MeasurementSnapshot],
) -> list[RenewalObservation]:
    """Certificate changes on stable (ip, port) between sweeps."""
    renewals = []
    for previous, current in zip(snapshots, snapshots[1:]):
        before = {
            (r.ip, r.port): r for r in previous.servers() if r.certificate
        }
        for record in current.servers():
            if record.certificate is None:
                continue
            old = before.get((record.ip, record.port))
            if old is None or old.certificate is None:
                continue
            if (
                old.certificate.thumbprint_hex
                == record.certificate.thumbprint_hex
            ):
                continue
            renewals.append(
                RenewalObservation(
                    ip=record.ip,
                    port=record.port,
                    sweep_date=current.date,
                    old_hash=old.certificate.signature_hash,
                    new_hash=record.certificate.signature_hash,
                    software_updated=(
                        old.software_version is not None
                        and record.software_version is not None
                        and old.software_version != record.software_version
                    ),
                )
            )
    return renewals
