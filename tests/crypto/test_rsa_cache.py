"""Correctness of the keyed handshake-operation caches.

The caches in :mod:`repro.crypto.cache` memoize pure functions (RSA
modular exponentiation, DER certificate parsing, AES key expansion),
so a cached result must be byte-identical to the uncached computation
regardless of call order, and distinct keys or inputs must never
collide.  These tests pin exactly that — the property that makes the
caches invisible to golden digests.
"""

import pytest

from repro.crypto.cache import KeyedOpCache, cache_stats, clear_caches
from repro.crypto.rsa import _KNOWN_INVERSES, _PRIVATE_OPS, _PUBLIC_OPS


class TestKeyedOpCache:
    def test_get_put_roundtrip(self):
        cache = KeyedOpCache("t-roundtrip")
        assert cache.get(("a", 1)) is None
        cache.put(("a", 1), 42)
        assert cache.get(("a", 1)) == 42
        assert len(cache) == 1

    def test_lookup_computes_once(self):
        cache = KeyedOpCache("t-lookup")
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.lookup("k", compute) == "value"
        assert cache.lookup("k", compute) == "value"
        assert len(calls) == 1

    def test_fifo_eviction_respects_maxsize(self):
        cache = KeyedOpCache("t-evict", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("a") is None  # oldest entry evicted
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_stats_track_hits_and_misses(self):
        cache = KeyedOpCache("t-stats")
        cache.get("missing")
        cache.put("k", 1)
        cache.get("k")
        stats = cache.stats()
        assert stats["name"] == "t-stats"
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert any(s["name"] == "t-stats" for s in cache_stats())

    def test_concurrent_eviction_is_safe(self):
        """Racing puts at maxsize never raise (regression: two thread
        workers both evicting the same oldest key -> KeyError)."""
        import threading

        cache = KeyedOpCache("t-race", maxsize=8)
        errors = []
        start = threading.Barrier(4)

        def hammer(worker):
            start.wait()
            try:
                for i in range(2000):
                    cache.lookup((worker, i % 32), lambda: i)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8

    def test_clear_resets_entries_and_counters(self):
        cache = KeyedOpCache("t-clear")
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
        assert cache.get("k") is None


class TestRsaOpCache:
    """Cached RSA primitives equal the uncached computation, always."""

    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def test_cached_encrypt_matches_pow_across_orders(self, rsa_512, rsa_768):
        keys = [rsa_512.public, rsa_768.public]
        messages = [2, 3, 2**64 + 1]
        expected = {
            (key.n, m): pow(m, key.e, key.n)
            for key in keys
            for m in messages
        }
        # First pass populates the cache, second pass hits it, and an
        # interleaved third pass shuffles the call order — every call
        # must agree with the direct computation.
        for _ in range(2):
            for key in keys:
                for m in messages:
                    assert key.raw_encrypt(m) == expected[(key.n, m)]
        for m in reversed(messages):
            for key in reversed(keys):
                assert key.raw_encrypt(m) == expected[(key.n, m)]
        assert _PUBLIC_OPS.stats()["hits"] > 0

    def test_distinct_keys_same_message_never_collide(self, rsa_512, rsa_768):
        message = 12345
        a = rsa_512.public.raw_encrypt(message)
        b = rsa_768.public.raw_encrypt(message)
        assert a == pow(message, rsa_512.public.e, rsa_512.public.n)
        assert b == pow(message, rsa_768.public.e, rsa_768.public.n)
        assert a != b
        # Repeat from cache: still the per-key results.
        assert rsa_512.public.raw_encrypt(message) == a
        assert rsa_768.public.raw_encrypt(message) == b

    def test_cached_decrypt_round_trips(self, rsa_512):
        private, public = rsa_512.private, rsa_512.public
        plain = 2**100 + 17
        cipher = public.raw_encrypt(plain)
        # Encrypting in-process recorded the inverse pair, so both
        # decrypts resolve from the known-inverses table — no
        # private-key math at all.
        assert private.raw_decrypt(cipher) == plain
        assert private.raw_decrypt(cipher) == plain
        assert _KNOWN_INVERSES.stats()["hits"] >= 2

    def test_foreign_ciphertext_uses_the_private_cache(self, rsa_512):
        """A ciphertext this process never encrypted (no inverse pair
        recorded) falls back to CRT, cached in _PRIVATE_OPS."""
        private, public = rsa_512.private, rsa_512.public
        plain = 2**100 + 17
        cipher = pow(plain, public.e, public.n)  # bypasses raw_encrypt
        assert private.raw_decrypt(cipher) == plain
        assert private.raw_decrypt(cipher) == plain
        assert _PRIVATE_OPS.stats()["misses"] == 1
        assert _PRIVATE_OPS.stats()["hits"] == 1

    def test_verify_enables_inverse_signing(self, rsa_512):
        """Verifying a signature records (n, e, digest) -> signature,
        so re-signing the same digest is a table hit — and exact."""
        digest_int = 0xFEEDFACE
        signature = rsa_512.private.raw_sign(digest_int)
        assert rsa_512.public.raw_verify(signature) == digest_int
        clear_caches()
        # Cold sign is a private op; verify then records the inverse.
        assert rsa_512.private.raw_sign(digest_int) == signature
        assert rsa_512.public.raw_verify(signature) == digest_int
        before = _KNOWN_INVERSES.stats()["hits"]
        assert rsa_512.private.raw_sign(digest_int) == signature
        assert _KNOWN_INVERSES.stats()["hits"] == before + 1

    def test_sign_verify_aliases_share_the_cache(self, rsa_512):
        digest_int = 0xDEADBEEF
        signature = rsa_512.private.raw_sign(digest_int)
        assert rsa_512.public.raw_verify(signature) == digest_int
        before = _PUBLIC_OPS.stats()["hits"]
        assert rsa_512.public.raw_encrypt(signature) == digest_int
        assert _PUBLIC_OPS.stats()["hits"] == before + 1

    def test_out_of_range_still_rejected_not_cached(self, rsa_512):
        with pytest.raises(ValueError):
            rsa_512.public.raw_encrypt(rsa_512.public.n)
        with pytest.raises(ValueError):
            rsa_512.private.raw_decrypt(-1)


class TestCertificateParseCache:
    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def _build_cert(self, rsa_512):
        from datetime import datetime, timezone

        from repro.util.rng import DeterministicRng
        from repro.x509.builder import make_self_signed

        return make_self_signed(
            rsa_512,
            common_name="cache-test",
            application_uri="urn:test:cache",
            not_before=datetime(2020, 8, 30, tzinfo=timezone.utc),
            hash_name="sha256",
            rng=DeterministicRng(7, "cert-cache").substream("cert"),
        )

    def test_reparse_hits_cache_with_equal_result(self, rsa_512):
        from repro.x509.certificate import _PARSED_CERTIFICATES, parse_certificate

        der = self._build_cert(rsa_512).raw_der
        first = parse_certificate(der)
        second = parse_certificate(der)
        assert first == second
        assert first.raw_der == der
        assert _PARSED_CERTIFICATES.stats()["hits"] >= 1

    def test_parse_errors_propagate_uncached(self):
        from repro.x509.certificate import (
            _PARSED_CERTIFICATES,
            CertificateError,
            parse_certificate,
        )

        for _ in range(2):
            with pytest.raises(CertificateError):
                parse_certificate(b"\x30\x03\x02\x01\x01")
        assert len(_PARSED_CERTIFICATES) == 0


class TestAesScheduleCache:
    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def test_same_key_shares_the_expanded_schedule(self):
        from repro.crypto.aes import AesCipher, cipher_for_key

        key = bytes(range(16))
        cached = cipher_for_key(key)
        assert cipher_for_key(key) is cached
        block = b"0123456789abcdef"
        assert cached.encrypt_block(block) == AesCipher(key).encrypt_block(
            block
        )

    def test_distinct_keys_get_distinct_ciphers(self):
        from repro.crypto.aes import cipher_for_key

        block = b"0123456789abcdef"
        one = cipher_for_key(bytes(16))
        other = cipher_for_key(bytes([1]) + bytes(15))
        assert one is not other
        assert one.encrypt_block(block) != other.encrypt_block(block)

    def test_cbc_round_trip_through_cached_schedule(self):
        from repro.crypto.aes import AesCbc

        key, iv = bytes(range(16)), bytes(range(16, 32))
        plain = b"x" * 32
        encrypted = AesCbc(key, iv).encrypt(plain)
        assert AesCbc(key, iv).decrypt(encrypted) == plain
