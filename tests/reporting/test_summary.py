"""reporting/summary.py coverage: headlines, run listings, diff text.

The renderers end every block with a digest line, so the assertions
here pin both the human-readable shape and the digest plumbing.
"""

from __future__ import annotations

from repro.analysis.pipeline import ANALYSIS_NAMES
from repro.dataset.catalog import RunInfo
from repro.reporting.summary import (
    render_analysis_report,
    render_runs,
    render_study_diff,
)


def run_info(key: str = "a" * 64, **overrides) -> RunInfo:
    values = dict(
        key=key,
        seed=20200830,
        sweeps=8,
        records=1132,
        sweep_dates=("2020-02-09", "2020-08-30"),
        digest="c" * 64,
        spec_rows=8,
        spec_servers=127,
        config={"seed": 20200830},
        merge=None,
    )
    values.update(overrides)
    return RunInfo(**values)


class TestRenderAnalysisReport:
    def test_every_registered_analysis_gets_a_headline(
        self, serial_tiny_result
    ):
        report = serial_tiny_result.run_analyses()
        rendered = render_analysis_report(report)
        for name in ANALYSIS_NAMES:
            assert f"\n{name}" in rendered or rendered.startswith(name)
        # No analysis fell through to the type-name fallback.
        assert "Statistics" not in rendered
        assert "Summary" not in rendered

    def test_digest_line_matches_report_digest(self, serial_tiny_result):
        report = serial_tiny_result.run_analyses()
        rendered = render_analysis_report(report)
        assert rendered.endswith(f"report digest: {report.digest()}")
        assert f"seed {report.seed}" in rendered

    def test_subset_report_renders_only_selected(self, serial_tiny_result):
        report = serial_tiny_result.run_analyses(names=("deficits",))
        rendered = render_analysis_report(report)
        assert "deficient" in rendered
        assert "\nmodes" not in rendered


class TestRenderRuns:
    def test_lists_full_keys_and_registry_digest(self):
        runs = [run_info("a" * 64), run_info("b" * 64, seed=7)]
        rendered = render_runs(runs, registry_digest="e" * 64)
        assert "a" * 64 in rendered
        assert "b" * 64 in rendered
        assert "Stored studies (2)" in rendered
        assert rendered.endswith("registry digest: " + "e" * 64)
        assert "2020-02-09..2020-08-30" in rendered

    def test_merge_provenance_column(self):
        runs = [run_info(merge={"shard_count": 4})]
        assert "4" in render_runs(runs).splitlines()[-1]

    def test_empty_store_renders_without_digest(self):
        rendered = render_runs([])
        assert "Stored studies (0)" in rendered
        assert "registry digest" not in rendered


class TestRenderStudyDiff:
    def _diff(self, **kwargs):
        from tests.analysis.test_diff import diff_summaries, server, summary, sweep

        a = summary(
            sweep("2020-07-06", [server(1), server(2, policy="None")]),
            label="a" * 64,
        )
        b = summary(
            sweep("2020-08-30", [server(2), server(3)]), label="b" * 64
        )
        return diff_summaries(a, b)

    def test_headline_counts_and_digest(self):
        diff = self._diff()
        rendered = render_study_diff(diff)
        assert "appeared 1, disappeared 1, changed 1" in rendered
        assert f"diff digest: {diff.digest()}" in rendered
        assert "servers: 2 -> 2" in rendered
        # Labels are shortened for reading, never truncated in the JSON.
        assert "a" * 12 in rendered and "a" * 64 not in rendered

    def test_deltas_show_only_nonzero_entries(self):
        rendered = render_study_diff(self._diff())
        assert "policy deltas" in rendered
        assert "N -1" in rendered
        assert "S2 +1" in rendered

    def test_empty_diff_says_so(self):
        from tests.analysis.test_diff import diff_summaries, server, summary, sweep

        a = summary(sweep("2020-07-06", [server(1)]), label="x")
        rendered = render_study_diff(diff_summaries(a, a))
        assert "no longitudinal differences" in rendered

    def test_long_churn_lists_are_truncated(self):
        from tests.analysis.test_diff import diff_summaries, server, summary, sweep

        a = summary(sweep("2020-07-06", []), label="a")
        b = summary(
            sweep("2020-08-30", [server(ip) for ip in range(1, 30)]),
            label="b",
        )
        rendered = render_study_diff(diff_summaries(a, b), limit=5)
        assert "(24 more)" in rendered
