"""Dual-stack deployment extension (paper future work).

Gives a fraction of the built hosts an additional IPv6 address and
produces the hitlist an IPv6 measurement would start from.  The
security configuration of a dual-stack host is *identical* on both
address families (it is the same server process), which directly
realizes the paper's conjecture that IPv6-reachable devices are not
configured any more securely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deployments.population import BuiltHost
from repro.netsim.ipv6 import Ipv6Block
from repro.netsim.net import SimHost, SimNetwork
from repro.util.rng import DeterministicRng

# Provider prefixes for simulated IPv6 deployments (documentation
# prefix space, RFC 3849).
PROVIDER_PREFIXES = (
    Ipv6Block.parse("2001:db8:100::/48"),
    Ipv6Block.parse("2001:db8:200::/48"),
    Ipv6Block.parse("2001:db8:300::/48"),
)


@dataclass
class DualStackPlan:
    """Which hosts got IPv6 and where."""

    addresses: dict[int, int] = field(default_factory=dict)  # host index -> v6
    hitlist: list[int] = field(default_factory=list)

    @property
    def host_count(self) -> int:
        return len(self.addresses)


def enable_ipv6(
    hosts: list[BuiltHost],
    network: SimNetwork,
    rng: DeterministicRng,
    fraction: float = 0.2,
    hitlist_coverage: float = 0.8,
    hitlist_noise: int = 50,
) -> DualStackPlan:
    """Attach IPv6 addresses to a sample of hosts.

    ``hitlist_coverage`` models the reality that hitlists are
    incomplete: only that share of the dual-stack hosts appears on the
    hitlist; ``hitlist_noise`` adds unreachable addresses.
    """
    plan = DualStackPlan()
    used: set[int] = set()
    for built in hosts:
        if rng.substream(f"v6-{built.index}").random() >= fraction:
            continue
        prefix = PROVIDER_PREFIXES[built.index % len(PROVIDER_PREFIXES)]
        address = None
        attempt_rng = rng.substream(f"v6-addr-{built.index}")
        while address is None or address in used:
            address = prefix.address_at(attempt_rng.getrandbits(64))
        used.add(address)
        plan.addresses[built.index] = address
        sim_host = SimHost(address=address, asn=built.asn)
        sim_host.listen(built.port, built.server.new_connection)
        network.add_host(sim_host)

    list_rng = rng.substream("hitlist")
    for host_index, address in plan.addresses.items():
        if list_rng.random() < hitlist_coverage:
            plan.hitlist.append(address)
    for _ in range(hitlist_noise):
        noise = PROVIDER_PREFIXES[0].address_at(list_rng.getrandbits(64))
        if noise not in used:
            plan.hitlist.append(noise)
    plan.hitlist = list_rng.shuffled(plan.hitlist)
    return plan
