"""Property-based round-trips for composite service structures."""

import string

from hypothesis import given, settings, strategies as st

from repro.uabin.builtin import LocalizedText
from repro.uabin.enums import (
    ApplicationType,
    MessageSecurityMode,
    UserTokenType,
)
from repro.uabin.nodeid import NodeId
from repro.uabin.types_common import (
    ApplicationDescription,
    EndpointDescription,
    UserTokenPolicy,
)
from repro.uabin.types_discovery import GetEndpointsResponse
from repro.uabin.types_query import (
    BrowsePath,
    RelativePath,
    RelativePathElement,
    TranslateBrowsePathsRequest,
)
from repro.uabin.builtin import QualifiedName

text_values = st.one_of(
    st.none(), st.text(alphabet=string.printable, max_size=40)
)
uri_values = st.one_of(st.none(), st.text(alphabet=string.ascii_letters + ":/._-", max_size=60))


@st.composite
def application_descriptions(draw):
    return ApplicationDescription(
        application_uri=draw(uri_values),
        product_uri=draw(uri_values),
        application_name=LocalizedText(draw(text_values), draw(text_values)),
        application_type=draw(st.sampled_from(list(ApplicationType))),
        discovery_urls=draw(
            st.one_of(st.none(), st.lists(st.text(max_size=30), max_size=4))
        ),
    )


@st.composite
def token_policies(draw):
    return UserTokenPolicy(
        policy_id=draw(text_values),
        token_type=draw(st.sampled_from(list(UserTokenType))),
        issued_token_type=draw(text_values),
        issuer_endpoint_url=draw(uri_values),
        security_policy_uri=draw(uri_values),
    )


@st.composite
def endpoint_descriptions(draw):
    return EndpointDescription(
        endpoint_url=draw(uri_values),
        server=draw(application_descriptions()),
        server_certificate=draw(st.one_of(st.none(), st.binary(max_size=80))),
        security_mode=draw(st.sampled_from(list(MessageSecurityMode))),
        security_policy_uri=draw(uri_values),
        user_identity_tokens=draw(
            st.one_of(st.none(), st.lists(token_policies(), max_size=4))
        ),
        transport_profile_uri=draw(uri_values),
        security_level=draw(st.integers(0, 255)),
    )


@settings(max_examples=60, deadline=None)
@given(application_descriptions())
def test_application_description_round_trip(value):
    assert ApplicationDescription.from_bytes(value.to_bytes()) == value


@settings(max_examples=60, deadline=None)
@given(endpoint_descriptions())
def test_endpoint_description_round_trip(value):
    assert EndpointDescription.from_bytes(value.to_bytes()) == value


@settings(max_examples=30, deadline=None)
@given(st.lists(endpoint_descriptions(), max_size=5))
def test_get_endpoints_response_round_trip(endpoints):
    message = GetEndpointsResponse(endpoints=endpoints)
    assert GetEndpointsResponse.from_bytes(message.to_bytes()) == message


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10), st.text(max_size=20)), max_size=6
    ),
    st.integers(0, 0xFFFF),
)
def test_translate_request_round_trip(names, namespace):
    request = TranslateBrowsePathsRequest(
        browse_paths=[
            BrowsePath(
                starting_node=NodeId(0, 85),
                relative_path=RelativePath(
                    elements=[
                        RelativePathElement(
                            target_name=QualifiedName(ns, name)
                        )
                        for ns, name in names
                    ]
                ),
            )
        ]
    )
    decoded = TranslateBrowsePathsRequest.from_bytes(request.to_bytes())
    assert decoded == request


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=1, max_size=120))
def test_arbitrary_bytes_never_crash_decoder(data):
    """Decoding garbage must raise a clean error, never crash oddly."""
    from repro.uabin.structs import DecodingError

    try:
        EndpointDescription.from_bytes(data)
    except (DecodingError, ValueError, UnicodeDecodeError, OverflowError):
        pass  # clean, expected failure modes
