"""Unit tests for authentication, permissions, and sessions."""

import pytest

from repro.server.access import Permissions, Role, UserContext
from repro.server.auth import AuthenticationError, Authenticator, UserDirectory
from repro.server.session import SessionManager
from repro.uabin.enums import UserTokenType
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCodes
from repro.uabin.types_session import (
    AnonymousIdentityToken,
    IssuedIdentityToken,
    UserNameIdentityToken,
    X509IdentityToken,
)
from repro.util.rng import DeterministicRng


class TestPermissions:
    def test_default_locked_down(self):
        perms = Permissions()
        assert not perms.allows_read(Role.ANONYMOUS)
        assert perms.allows_read(Role.OPERATOR)
        assert not perms.allows_write(Role.OPERATOR)
        assert perms.allows_write(Role.ADMIN)

    def test_open_to_all(self):
        perms = Permissions.open_to_all()
        assert perms.allows_write(Role.ANONYMOUS)
        assert perms.allows_execute(Role.ANONYMOUS)

    def test_make_flags(self):
        perms = Permissions.make(read_anonymous=True)
        assert perms.allows_read(Role.ANONYMOUS)
        assert not perms.allows_write(Role.ANONYMOUS)

    def test_read_only_public(self):
        perms = Permissions.read_only_public()
        assert perms.allows_read(Role.ANONYMOUS)
        assert not perms.allows_write(Role.ANONYMOUS)


class TestAuthenticator:
    def make_auth(self, *types):
        directory = UserDirectory()
        directory.add_user("op", "pw", Role.OPERATOR)
        directory.add_issued_token(b"valid-token")
        return Authenticator(allowed_token_types=set(types), directory=directory)

    def test_anonymous_allowed(self):
        auth = self.make_auth(UserTokenType.ANONYMOUS)
        user = auth.authenticate(AnonymousIdentityToken("anon"))
        assert user.is_anonymous

    def test_none_token_means_anonymous(self):
        auth = self.make_auth(UserTokenType.ANONYMOUS)
        assert auth.authenticate(None).is_anonymous

    def test_anonymous_rejected_when_disabled(self):
        auth = self.make_auth(UserTokenType.USERNAME)
        with pytest.raises(AuthenticationError) as excinfo:
            auth.authenticate(AnonymousIdentityToken("anon"))
        assert excinfo.value.status == StatusCodes.BadIdentityTokenRejected

    def test_username_valid(self):
        auth = self.make_auth(UserTokenType.USERNAME)
        user = auth.authenticate(
            UserNameIdentityToken("u", "op", b"pw", None)
        )
        assert user.role == Role.OPERATOR
        assert user.name == "op"

    def test_username_wrong_password(self):
        auth = self.make_auth(UserTokenType.USERNAME)
        with pytest.raises(AuthenticationError) as excinfo:
            auth.authenticate(UserNameIdentityToken("u", "op", b"no", None))
        assert excinfo.value.status == StatusCodes.BadUserAccessDenied

    def test_username_missing_fields(self):
        auth = self.make_auth(UserTokenType.USERNAME)
        with pytest.raises(AuthenticationError) as excinfo:
            auth.authenticate(UserNameIdentityToken("u", None, None, None))
        assert excinfo.value.status == StatusCodes.BadIdentityTokenInvalid

    def test_certificate_trusted(self, rsa_768):
        from repro.util.simtime import parse_utc
        from repro.x509.builder import make_self_signed

        rng = DeterministicRng(5, "auth-cert")
        cert = make_self_signed(
            rsa_768, "user", "urn:user", parse_utc("2020-01-01"), "sha256", rng
        )
        auth = self.make_auth(UserTokenType.CERTIFICATE)
        auth.directory.trust_certificate(cert.raw_der)
        user = auth.authenticate(X509IdentityToken("c", cert.raw_der))
        assert user.role == Role.OPERATOR

    def test_certificate_untrusted(self, rsa_768):
        from repro.util.simtime import parse_utc
        from repro.x509.builder import make_self_signed

        rng = DeterministicRng(6, "auth-cert2")
        cert = make_self_signed(
            rsa_768, "user", "urn:user", parse_utc("2020-01-01"), "sha256", rng
        )
        auth = self.make_auth(UserTokenType.CERTIFICATE)
        with pytest.raises(AuthenticationError) as excinfo:
            auth.authenticate(X509IdentityToken("c", cert.raw_der))
        assert excinfo.value.status == StatusCodes.BadUserAccessDenied

    def test_certificate_garbage_rejected(self):
        auth = self.make_auth(UserTokenType.CERTIFICATE)
        with pytest.raises(AuthenticationError) as excinfo:
            auth.authenticate(X509IdentityToken("c", b"not-a-cert"))
        assert excinfo.value.status == StatusCodes.BadIdentityTokenInvalid

    def test_issued_token_valid(self):
        auth = self.make_auth(UserTokenType.ISSUED_TOKEN)
        user = auth.authenticate(IssuedIdentityToken("t", b"valid-token", None))
        assert user.role == Role.OPERATOR

    def test_issued_token_unknown(self):
        auth = self.make_auth(UserTokenType.ISSUED_TOKEN)
        with pytest.raises(AuthenticationError):
            auth.authenticate(IssuedIdentityToken("t", b"forged", None))


class TestSessionManager:
    def make_manager(self, max_sessions=100):
        return SessionManager(DeterministicRng(9, "sessions"), max_sessions)

    def test_create_and_lookup(self):
        manager = self.make_manager()
        session = manager.create("s", 60000.0, b"nonce")
        assert manager.lookup(session.authentication_token) is session

    def test_lookup_unknown_token(self):
        manager = self.make_manager()
        assert manager.lookup(NodeId(0, b"nope")) is None
        assert manager.lookup(NodeId(0, 42)) is None

    def test_activate(self):
        manager = self.make_manager()
        session = manager.create("s", 60000.0, None)
        assert not session.activated
        manager.activate(session, UserContext.anonymous())
        assert session.activated
        assert session.user.is_anonymous

    def test_activation_rotates_nonce(self):
        manager = self.make_manager()
        session = manager.create("s", 60000.0, None)
        before = session.server_nonce
        manager.activate(session, UserContext.anonymous())
        assert session.server_nonce != before

    def test_close_removes(self):
        manager = self.make_manager()
        session = manager.create("s", 60000.0, None)
        manager.close(session)
        assert manager.lookup(session.authentication_token) is None

    def test_session_limit(self):
        manager = self.make_manager(max_sessions=2)
        manager.create("a", 1.0, None)
        manager.create("b", 1.0, None)
        with pytest.raises(AuthenticationError) as excinfo:
            manager.create("c", 1.0, None)
        assert excinfo.value.status == StatusCodes.BadTooManySessions

    def test_session_ids_unique(self):
        manager = self.make_manager()
        ids = {manager.create(f"s{i}", 1.0, None).session_id for i in range(10)}
        assert len(ids) == 10
