"""Campaign orchestration: weekly sweeps + follow-references.

A campaign binds the scanner identity (self-signed certificate with
contact information, as the paper's ethics appendix describes), the
opt-out blocklist, and the per-host traversal budget; ``run_sweep``
produces one dated :class:`MeasurementSnapshot`.

From 2020-05-04 on, the paper also connected to host/port combinations
listed as endpoints on already-scanned servers ("follow references",
visible in Figure 2); ``follow_references=True`` reproduces that.

Grabs run through a pluggable :class:`~repro.scanner.executor.ScanExecutor`
(serial, thread pool, or fork-based process pool).  Three invariants
make every backend produce byte-identical snapshots:

* each grab derives its RNG purely from ``(seed, date, address,
  port)`` — the sweep substream's namespace embeds the date, and
  :func:`~repro.scanner.grabber.grab_host` derives per-connection
  substreams keyed by address and port;
* each grab runs against a per-task :class:`~repro.netsim.net.NetworkView`
  whose clock starts at sweep time, so no task observes another task's
  traversal pacing;
* the first wave's task keys are all registered before any
  follow-reference expansion runs (the executor exhausts the initial
  stream before draining results), so a referenced endpoint that is
  also an open first-wave host is always classified as first-wave;
* records are assembled canonically — the first wave sorted by
  address, follow-reference records sorted by ``(address, port)`` —
  regardless of completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.client import ClientIdentity
from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimNetwork
from repro.netsim.tcpscan import probe_candidates
from repro.scanner.executor import (
    GrabTask,
    ScanExecutor,
    SerialScanExecutor,
)
from repro.scanner.grabber import grab_host
from repro.scanner.limits import TraversalBudget
from repro.scanner.records import HostRecord, MeasurementSnapshot
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import format_utc

OPCUA_PORT = 4840


@dataclass(frozen=True)
class ScannerIdentity:
    """The measurement client's identity (paper Appendix A.2)."""

    client_identity: ClientIdentity
    contact_url: str = "https://scan-research.example.org"
    reverse_dns: str = "research-scanner.example.org"


class ScanCampaign:
    """Weekly measurement campaign over a simulated Internet."""

    def __init__(
        self,
        network: SimNetwork,
        identity: ScannerIdentity,
        rng: DeterministicRng,
        blocklist: Blocklist | None = None,
        budget: TraversalBudget | None = None,
        port: int = OPCUA_PORT,
        executor: ScanExecutor | None = None,
    ):
        self._network = network
        self._identity = identity
        self._rng = rng
        self._blocklist = blocklist or Blocklist()
        self._budget_template = budget or TraversalBudget()
        self._port = port
        self._executor = executor or SerialScanExecutor()

    def run_sweep(
        self,
        label: str | None = None,
        follow_references: bool = False,
        extra_candidates: int = 0,
        traverse: bool = True,
    ) -> MeasurementSnapshot:
        """One full sweep: port scan, grab every responder, follow refs."""
        date = label or format_utc(self._network.clock.now())[:10]
        sweep_rng = self._rng.substream(f"sweep-{date}")
        counters = {"probed": 0, "excluded": 0, "open": 0}

        def wave_tasks():
            # zmap→zgrab2 pipelining: pooled executors submit each open
            # address as the prober finds it, so grabbing overlaps the
            # rest of the port sweep.  (Follow-reference expansion only
            # starts after this generator is exhausted, so the
            # via_reference/first-wave split never depends on timing.)
            for address, status in probe_candidates(
                self._network,
                self._port,
                sweep_rng,
                blocklist=self._blocklist,
                extra_candidates=extra_candidates,
            ):
                if status == "excluded":
                    counters["excluded"] += 1
                    continue
                counters["probed"] += 1
                if status == "open":
                    counters["open"] += 1
                    yield GrabTask(address, self._port)

        def grab(task: GrabTask) -> HostRecord:
            return self._grab(task, sweep_rng, traverse)

        def expand(task: GrabTask, record: HostRecord) -> list[GrabTask]:
            # One level of following, from first-wave records only —
            # the endpoints a referenced server advertises are not
            # followed further (matching the paper's methodology).
            if not follow_references or task.via_reference:
                return []
            out = []
            for address, port in self._referenced_targets([record]):
                if address in self._blocklist:
                    continue
                out.append(GrabTask(address, port, via_reference=True))
            return out

        completed = self._executor.run(wave_tasks(), grab, expand)
        snapshot = MeasurementSnapshot(
            date=date,
            probed=counters["probed"],
            port_open=counters["open"],
            excluded=counters["excluded"],
        )

        primary = sorted(
            (pair for pair in completed if not pair[0].via_reference),
            key=lambda pair: pair[0].key,
        )
        referenced = sorted(
            (pair for pair in completed if pair[0].via_reference),
            key=lambda pair: pair[0].key,
        )
        snapshot.records.extend(record for _, record in primary)
        snapshot.records.extend(
            record for _, record in referenced if record.tcp_open
        )
        return snapshot

    def _grab(
        self,
        task: GrabTask,
        rng: DeterministicRng,
        traverse: bool = True,
    ) -> HostRecord:
        budget = replace(self._budget_template)
        view = self._network.task_view(f"task-{task.address}-{task.port}")
        return grab_host(
            view,
            task.address,
            task.port,
            self._identity.client_identity,
            rng,
            budget=budget,
            via_reference=task.via_reference,
            traverse=traverse,
        )

    def _referenced_targets(self, records) -> list[tuple[int, int]]:
        """host/port combinations named in scanned endpoint URLs."""
        targets = []
        seen = set()
        for record in records:
            for endpoint in record.endpoints:
                parsed = parse_endpoint_url(endpoint.endpoint_url)
                if parsed is None:
                    continue
                if parsed == (record.ip, record.port):
                    continue
                if parsed not in seen:
                    seen.add(parsed)
                    targets.append(parsed)
        return targets


def parse_endpoint_url(url: str | None) -> tuple[int, int] | None:
    """Parse ``opc.tcp://a.b.c.d:port/...`` into (address, port)."""
    if not url or not url.startswith("opc.tcp://"):
        return None
    rest = url[len("opc.tcp://") :]
    host_port = rest.split("/", 1)[0]
    host, _, port_text = host_port.partition(":")
    try:
        address = parse_ipv4(host)
    except ValueError:
        return None
    if not port_text:
        return address, OPCUA_PORT
    try:
        port = int(port_text)
    except ValueError:
        return None
    if not 0 < port < 65536:
        return None
    return address, port
