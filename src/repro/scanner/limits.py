"""Scan budgets (paper Appendix A.2).

The paper paced address-space traversal at 500 ms between requests and
capped each host at 60 minutes of scan time and 50 MB of outgoing
traffic.  The budget object tracks all three against the simulated
clock and the socket's byte counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime


@dataclass
class TraversalBudget:
    inter_request_delay_s: float = 0.5
    max_scan_seconds: float = 3600.0
    max_bytes: int = 50 * 1024 * 1024

    started_at: datetime | None = None
    requests_made: int = 0
    exhausted_reason: str | None = None

    def start(self, now: datetime) -> None:
        self.started_at = now
        self.requests_made = 0
        self.exhausted_reason = None

    def elapsed_seconds(self, now: datetime) -> float:
        if self.started_at is None:
            return 0.0
        return (now - self.started_at).total_seconds()

    def check(self, now: datetime, bytes_used: int) -> bool:
        """True while the budget allows another request."""
        if self.started_at is None:
            raise RuntimeError("budget not started")
        if self.elapsed_seconds(now) >= self.max_scan_seconds:
            self.exhausted_reason = "time"
            return False
        if bytes_used >= self.max_bytes:
            self.exhausted_reason = "traffic"
            return False
        return True

    def count_request(self) -> None:
        self.requests_made += 1
