import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import pkcs1
from repro.util.rng import DeterministicRng


@pytest.fixture()
def pad_rng():
    return DeterministicRng(42, "padding")


class TestPkcs1V15Signatures:
    def test_sign_verify(self, rsa_1024, pad_rng):
        sig = pkcs1.pkcs1v15_sign(rsa_1024.private, "sha256", b"hello")
        assert pkcs1.pkcs1v15_verify(rsa_1024.public, "sha256", b"hello", sig)

    def test_verify_rejects_other_message(self, rsa_1024):
        sig = pkcs1.pkcs1v15_sign(rsa_1024.private, "sha256", b"hello")
        assert not pkcs1.pkcs1v15_verify(rsa_1024.public, "sha256", b"bye", sig)

    def test_verify_rejects_other_hash(self, rsa_1024):
        sig = pkcs1.pkcs1v15_sign(rsa_1024.private, "sha256", b"hello")
        assert not pkcs1.pkcs1v15_verify(rsa_1024.public, "sha1", b"hello", sig)

    def test_verify_rejects_bitflip(self, rsa_1024):
        sig = bytearray(pkcs1.pkcs1v15_sign(rsa_1024.private, "sha256", b"hello"))
        sig[10] ^= 0x01
        assert not pkcs1.pkcs1v15_verify(rsa_1024.public, "sha256", b"hello", bytes(sig))

    def test_verify_rejects_wrong_length(self, rsa_1024):
        assert not pkcs1.pkcs1v15_verify(rsa_1024.public, "sha256", b"hello", b"short")

    @pytest.mark.parametrize("hash_name", ["md5", "sha1", "sha256"])
    def test_all_hashes(self, rsa_1024, hash_name):
        sig = pkcs1.pkcs1v15_sign(rsa_1024.private, hash_name, b"data")
        assert pkcs1.pkcs1v15_verify(rsa_1024.public, hash_name, b"data", sig)

    def test_cross_validation_with_cryptography(self, rsa_1024):
        from cryptography.hazmat.primitives import hashes as c_hashes
        from cryptography.hazmat.primitives.asymmetric import (
            padding as c_padding,
            rsa as c_rsa,
        )

        sig = pkcs1.pkcs1v15_sign(rsa_1024.private, "sha256", b"oracle check")
        pub = c_rsa.RSAPublicNumbers(
            rsa_1024.private.e, rsa_1024.private.n
        ).public_key()
        pub.verify(sig, b"oracle check", c_padding.PKCS1v15(), c_hashes.SHA256())


class TestPkcs1V15Encryption:
    def test_round_trip(self, rsa_1024, pad_rng):
        ct = pkcs1.pkcs1v15_encrypt(rsa_1024.public, b"secret", pad_rng)
        assert pkcs1.pkcs1v15_decrypt(rsa_1024.private, ct) == b"secret"

    def test_ciphertext_randomized(self, rsa_1024, pad_rng):
        a = pkcs1.pkcs1v15_encrypt(rsa_1024.public, b"secret", pad_rng)
        b = pkcs1.pkcs1v15_encrypt(rsa_1024.public, b"secret", pad_rng)
        assert a != b

    def test_message_too_long_rejected(self, rsa_1024, pad_rng):
        with pytest.raises(pkcs1.CryptoError):
            pkcs1.pkcs1v15_encrypt(rsa_1024.public, b"x" * 200, pad_rng)

    def test_max_plaintext_boundary(self, rsa_1024, pad_rng):
        limit = pkcs1.pkcs1v15_max_plaintext(rsa_1024.public.byte_length)
        ct = pkcs1.pkcs1v15_encrypt(rsa_1024.public, b"x" * limit, pad_rng)
        assert pkcs1.pkcs1v15_decrypt(rsa_1024.private, ct) == b"x" * limit

    def test_tampered_ciphertext_rejected(self, rsa_1024, pad_rng):
        ct = bytearray(pkcs1.pkcs1v15_encrypt(rsa_1024.public, b"secret", pad_rng))
        ct[0] ^= 0x80
        with pytest.raises((pkcs1.CryptoError, ValueError)):
            pkcs1.pkcs1v15_decrypt(rsa_1024.private, bytes(ct))


class TestOaep:
    def test_round_trip(self, rsa_1024, pad_rng):
        ct = pkcs1.oaep_encrypt(rsa_1024.public, b"secret", pad_rng)
        assert pkcs1.oaep_decrypt(rsa_1024.private, ct) == b"secret"

    def test_sha256_mgf(self, rsa_1024, pad_rng):
        ct = pkcs1.oaep_encrypt(rsa_1024.public, b"s", pad_rng, hash_name="sha256")
        assert pkcs1.oaep_decrypt(rsa_1024.private, ct, hash_name="sha256") == b"s"

    def test_empty_message(self, rsa_1024, pad_rng):
        ct = pkcs1.oaep_encrypt(rsa_1024.public, b"", pad_rng)
        assert pkcs1.oaep_decrypt(rsa_1024.private, ct) == b""

    def test_label_mismatch_rejected(self, rsa_1024, pad_rng):
        ct = pkcs1.oaep_encrypt(rsa_1024.public, b"secret", pad_rng, label=b"a")
        with pytest.raises(pkcs1.CryptoError):
            pkcs1.oaep_decrypt(rsa_1024.private, ct, label=b"b")

    def test_too_long_rejected(self, rsa_1024, pad_rng):
        limit = pkcs1.oaep_max_plaintext(rsa_1024.public.byte_length)
        with pytest.raises(pkcs1.CryptoError):
            pkcs1.oaep_encrypt(rsa_1024.public, b"x" * (limit + 1), pad_rng)

    def test_cross_validation_with_cryptography(self, rsa_1024, pad_rng):
        from cryptography.hazmat.primitives import hashes as c_hashes
        from cryptography.hazmat.primitives.asymmetric import (
            padding as c_padding,
            rsa as c_rsa,
        )

        key = rsa_1024.private
        pub = c_rsa.RSAPublicNumbers(key.e, key.n).public_key()
        ct = pub.encrypt(
            b"oracle oaep",
            c_padding.OAEP(
                mgf=c_padding.MGF1(algorithm=c_hashes.SHA1()),
                algorithm=c_hashes.SHA1(),
                label=None,
            ),
        )
        assert pkcs1.oaep_decrypt(key, ct) == b"oracle oaep"


class TestPss:
    def test_sign_verify(self, rsa_1024, pad_rng):
        sig = pkcs1.pss_sign(rsa_1024.private, "sha256", b"msg", pad_rng)
        assert pkcs1.pss_verify(rsa_1024.public, "sha256", b"msg", sig)

    def test_verify_rejects_other_message(self, rsa_1024, pad_rng):
        sig = pkcs1.pss_sign(rsa_1024.private, "sha256", b"msg", pad_rng)
        assert not pkcs1.pss_verify(rsa_1024.public, "sha256", b"other", sig)

    def test_signatures_randomized(self, rsa_1024, pad_rng):
        a = pkcs1.pss_sign(rsa_1024.private, "sha256", b"msg", pad_rng)
        b = pkcs1.pss_sign(rsa_1024.private, "sha256", b"msg", pad_rng)
        assert a != b
        assert pkcs1.pss_verify(rsa_1024.public, "sha256", b"msg", a)
        assert pkcs1.pss_verify(rsa_1024.public, "sha256", b"msg", b)

    def test_cross_validation_with_cryptography(self, rsa_1024, pad_rng):
        from cryptography.hazmat.primitives import hashes as c_hashes
        from cryptography.hazmat.primitives.asymmetric import (
            padding as c_padding,
            rsa as c_rsa,
        )

        sig = pkcs1.pss_sign(rsa_1024.private, "sha256", b"oracle pss", pad_rng)
        pub = c_rsa.RSAPublicNumbers(
            rsa_1024.private.e, rsa_1024.private.n
        ).public_key()
        pub.verify(
            sig,
            b"oracle pss",
            c_padding.PSS(
                mgf=c_padding.MGF1(c_hashes.SHA256()),
                salt_length=c_hashes.SHA256().digest_size,
            ),
            c_hashes.SHA256(),
        )


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=50))
def test_oaep_round_trip_property(message):
    # Session fixtures are unavailable inside @given; use a small cached key.
    key = _cached_key()
    rng = DeterministicRng(7, "oaep-prop")
    ct = pkcs1.oaep_encrypt(key.public, message, rng)
    assert pkcs1.oaep_decrypt(key.private, ct) == message


_KEY_CACHE = []


def _cached_key():
    if not _KEY_CACHE:
        from repro.crypto.rsa import generate_rsa_key

        _KEY_CACHE.append(generate_rsa_key(768, DeterministicRng(9, "prop-key")))
    return _KEY_CACHE[0]
