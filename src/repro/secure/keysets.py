"""Derived symmetric key sets for a secure channel (OPC 10000-6 §6.7.5).

After OpenSecureChannel, both sides expand the exchanged nonces with
P_SHA1/P_SHA256 into two key sets: the client keys protect
client-to-server traffic, the server keys the reverse direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac_prf import p_hash
from repro.secure.policies import SecurityPolicy


@dataclass(frozen=True)
class SymmetricKeys:
    """One direction's signing key, encryption key, and IV."""

    signing_key: bytes
    encryption_key: bytes
    initialization_vector: bytes


def _expand(policy: SecurityPolicy, secret: bytes, seed: bytes) -> SymmetricKeys:
    total = (
        policy.sym_signature_key_len
        + policy.sym_encryption_key_len
        + policy.sym_block_size
    )
    material = p_hash(policy.derivation_hash, secret, seed, total)
    sig_end = policy.sym_signature_key_len
    enc_end = sig_end + policy.sym_encryption_key_len
    return SymmetricKeys(
        signing_key=material[:sig_end],
        encryption_key=material[sig_end:enc_end],
        initialization_vector=material[enc_end:],
    )


def derive_channel_keys(
    policy: SecurityPolicy, client_nonce: bytes, server_nonce: bytes
) -> tuple[SymmetricKeys, SymmetricKeys]:
    """Return ``(client_keys, server_keys)`` for the channel.

    Per spec the client keys are derived with the *server* nonce as
    secret and the client nonce as seed; server keys use the reverse.
    """
    if policy.derivation_hash is None:
        raise ValueError(f"policy {policy.name} derives no keys")
    if len(client_nonce) != policy.nonce_length:
        raise ValueError(
            f"client nonce must be {policy.nonce_length} bytes for {policy.name}"
        )
    if len(server_nonce) != policy.nonce_length:
        raise ValueError(
            f"server nonce must be {policy.nonce_length} bytes for {policy.name}"
        )
    client_keys = _expand(policy, server_nonce, client_nonce)
    server_keys = _expand(policy, client_nonce, server_nonce)
    return client_keys, server_keys
