"""Crash-injection e2e: SIGKILL a sharded campaign, resume, compare.

The PR's headline acceptance test.  A subprocess runs the tiny study
as three shards into a temp store; the parent waits for the first
shard's checkpoint to publish, kills the child with SIGKILL (no
cleanup handlers, exactly like the OOM killer or a pulled plug), then
resumes in-process.  The resumed study must

* reproduce the committed golden digests byte-for-byte,
* reuse the surviving checkpoint (its snapshot file's mtime does not
  change — resume never rewrites a valid shard), and
* publish the ordinary store entry plus a merge manifest naming all
  three shard digests.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.golden import (
    study_digests,
    tiny_spec,
    tiny_study_config,
)
from repro.core.study import StudyResult
from repro.dataset.store import SNAPSHOT_FILE, StudyStore, study_key
from repro.scanner.shard import run_sharded_study

REPO_ROOT = Path(__file__).resolve().parents[2]
DIGEST_PATH = REPO_ROOT / "tests" / "golden" / "tiny_study.digest.json"
SHARDS = 3

CHILD_SCRIPT = """
import sys
from repro.core.golden import tiny_spec, tiny_study_config
from repro.dataset.store import StudyStore
from repro.scanner.shard import run_sharded_study

run_sharded_study(
    tiny_study_config(),
    {shards},
    spec=tiny_spec(),
    store=StudyStore(sys.argv[1]),
)
"""


def test_kill_mid_campaign_then_resume_matches_golden(tmp_path):
    store_root = tmp_path / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.setdefault("REPRO_KEYCACHE", str(REPO_ROOT / ".keycache"))

    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT.format(shards=SHARDS),
         str(store_root)],
        env=env,
    )

    config, spec = tiny_study_config(), tiny_spec()
    key = study_key(config, spec)
    store = StudyStore(store_root)
    first_meta = store.shard_dir(key, 0, SHARDS) / "meta.json"

    # Wait for the first shard's checkpoint to publish, then kill the
    # campaign the hard way.  The two remaining shards take seconds,
    # so the window is wide; the deadline only guards a hung child.
    deadline = time.monotonic() + 120
    while not first_meta.exists():
        if child.poll() is not None:
            pytest.fail(
                f"campaign exited (rc={child.returncode}) before "
                "publishing its first shard checkpoint"
            )
        if time.monotonic() > deadline:
            child.kill()
            child.wait()
            pytest.fail("no shard checkpoint appeared within 120s")
        time.sleep(0.005)
    child.send_signal(signal.SIGKILL)
    assert child.wait(timeout=60) == -signal.SIGKILL

    # The kill left shard 0 committed and the merged entry unpublished.
    assert store.load_shard(config, spec, 0, SHARDS) is not None
    assert store.load(config, spec) is None

    checkpoint_file = store.shard_dir(key, 0, SHARDS) / SNAPSHOT_FILE
    mtime_before = checkpoint_file.stat().st_mtime_ns

    result = run_sharded_study(
        config, SHARDS, spec=spec, store=store, resume=True
    )

    committed = json.loads(DIGEST_PATH.read_text())
    assert study_digests(result) == committed["per_sweep"]

    # Resume reused the surviving checkpoint instead of rescanning it.
    assert checkpoint_file.stat().st_mtime_ns == mtime_before

    # The canonical entry is published and loads like any other study.
    stored = store.load(config, spec)
    assert study_digests(
        StudyResult(config=config, spec=spec, snapshots=stored)
    ) == committed["per_sweep"]

    manifest = store.read_merge_manifest(key)
    assert manifest["shard_count"] == SHARDS
    assert len({entry["digest"] for entry in manifest["shards"]}) == SHARDS
    assert manifest["merged_digest"] == committed["digest"]
