import pytest
from hypothesis import given, strategies as st

from repro.transport.chunks import ChunkAssembler, split_into_chunks
from repro.transport.connection import FrameReader, encode_frame
from repro.transport.messages import (
    HEADER_SIZE,
    AcknowledgeMessage,
    ErrorMessage,
    HelloMessage,
    MessageHeader,
    MessageType,
    TransportError,
)


class TestMessageHeader:
    def test_encode_decode(self):
        header = MessageHeader(MessageType.HELLO, "F", 32)
        assert MessageHeader.decode(header.encode()) == header

    def test_unknown_type_rejected(self):
        with pytest.raises(TransportError):
            MessageHeader.decode(b"XXXF\x20\x00\x00\x00")

    def test_bad_chunk_type_rejected(self):
        with pytest.raises(TransportError):
            MessageHeader.decode(b"MSGX\x20\x00\x00\x00")

    def test_short_header_rejected(self):
        with pytest.raises(TransportError):
            MessageHeader.decode(b"MSG")

    def test_size_below_header_rejected(self):
        with pytest.raises(TransportError):
            MessageHeader.decode(b"MSGF\x04\x00\x00\x00")


class TestHelloAck:
    def test_hello_round_trip(self):
        hello = HelloMessage(endpoint_url="opc.tcp://10.0.0.1:4840/")
        assert HelloMessage.decode_body(hello.encode_body()) == hello

    def test_hello_null_url(self):
        hello = HelloMessage(endpoint_url=None)
        assert HelloMessage.decode_body(hello.encode_body()).endpoint_url is None

    def test_ack_round_trip(self):
        ack = AcknowledgeMessage(receive_buffer_size=8192)
        assert AcknowledgeMessage.decode_body(ack.encode_body()) == ack

    def test_error_round_trip(self):
        err = ErrorMessage(error_code=0x80130000, reason="rejected")
        assert ErrorMessage.decode_body(err.encode_body()) == err


class TestFrameReader:
    def test_single_frame(self):
        frame = encode_frame(MessageType.HELLO, "F", b"body")
        reader = FrameReader()
        reader.feed(frame)
        header, body = reader.next_frame()
        assert header.message_type == MessageType.HELLO
        assert body == b"body"
        assert reader.next_frame() is None

    def test_partial_delivery(self):
        frame = encode_frame(MessageType.MESSAGE, "F", b"x" * 100)
        reader = FrameReader()
        reader.feed(frame[:5])
        assert reader.next_frame() is None
        reader.feed(frame[5:50])
        assert reader.next_frame() is None
        reader.feed(frame[50:])
        header, body = reader.next_frame()
        assert body == b"x" * 100

    def test_multiple_frames_in_one_feed(self):
        data = encode_frame(MessageType.MESSAGE, "C", b"a") + encode_frame(
            MessageType.MESSAGE, "F", b"b"
        )
        reader = FrameReader()
        reader.feed(data)
        frames = list(reader.drain_frames())
        assert [body for _, body in frames] == [b"a", b"b"]

    def test_oversized_frame_rejected(self):
        reader = FrameReader(max_frame_size=64)
        reader.feed(encode_frame(MessageType.MESSAGE, "F", b"y" * 100))
        with pytest.raises(TransportError):
            reader.next_frame()

    def test_undersized_frame_rejected_not_looped(self):
        """Regression: a header whose size field is smaller than the
        header itself can never be consumed, so yielding it (as an
        empty frame) would make drain_frames spin forever.  It must
        raise instead — and keep raising, never yielding."""
        malformed = b"MSGF" + (4).to_bytes(4, "little") + b"tail"
        reader = FrameReader()
        reader.feed(malformed)
        for _ in range(3):
            with pytest.raises(TransportError):
                next(iter(reader.drain_frames()))

    @given(st.integers(0, HEADER_SIZE - 1))
    def test_fuzzed_small_sizes_all_rejected(self, size):
        reader = FrameReader()
        reader.feed(b"MSGF" + size.to_bytes(4, "little"))
        with pytest.raises(TransportError):
            reader.next_frame()

    @given(st.binary(min_size=HEADER_SIZE, max_size=64))
    def test_fuzzed_headers_always_progress(self, data):
        """Whatever bytes arrive, next_frame either needs more input,
        consumes a frame, or raises — it never yields without
        consuming (the infinite-drain failure mode)."""
        reader = FrameReader(max_frame_size=1024)
        reader.feed(data)
        before = reader.buffered
        try:
            frame = reader.next_frame()
        except TransportError:
            return
        if frame is not None:
            assert reader.buffered < before

    @given(st.lists(st.binary(max_size=50), min_size=1, max_size=10), st.data())
    def test_arbitrary_split_points(self, bodies, data):
        stream = b"".join(
            encode_frame(MessageType.MESSAGE, "F", body) for body in bodies
        )
        reader = FrameReader()
        # Feed in random-size pieces.
        pos = 0
        received = []
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            reader.feed(stream[pos : pos + step])
            pos += step
            received.extend(body for _, body in reader.drain_frames())
        assert received == bodies


class TestChunking:
    def test_empty_payload_single_final(self):
        assert split_into_chunks(b"", 10) == [("F", b"")]

    def test_exact_fit(self):
        chunks = split_into_chunks(b"x" * 10, 10)
        assert chunks == [("F", b"x" * 10)]

    def test_split(self):
        chunks = split_into_chunks(b"abcdefghij", 4)
        assert chunks == [("C", b"abcd"), ("C", b"efgh"), ("F", b"ij")]

    def test_invalid_chunk_body_size(self):
        with pytest.raises(ValueError):
            split_into_chunks(b"x", 0)

    def test_assembler_round_trip(self):
        payload = bytes(range(256)) * 10
        assembler = ChunkAssembler()
        result = None
        for marker, body in split_into_chunks(payload, 100):
            result = assembler.feed(marker, body)
        assert result == payload
        assert not assembler.pending

    def test_abort_resets(self):
        assembler = ChunkAssembler()
        assembler.feed("C", b"partial")
        assert assembler.pending
        assert assembler.feed("A", b"") is None
        assert not assembler.pending

    def test_message_size_limit(self):
        assembler = ChunkAssembler(max_message_size=10)
        with pytest.raises(TransportError):
            assembler.feed("C", b"x" * 11)

    def test_chunk_count_limit(self):
        assembler = ChunkAssembler(max_chunk_count=2)
        assembler.feed("C", b"a")
        assembler.feed("C", b"b")
        with pytest.raises(TransportError):
            assembler.feed("C", b"c")

    def test_invalid_marker(self):
        with pytest.raises(TransportError):
            ChunkAssembler().feed("Z", b"")

    @given(st.binary(min_size=1, max_size=2000), st.integers(1, 300))
    def test_split_reassemble_property(self, payload, chunk_size):
        assembler = ChunkAssembler()
        result = None
        for marker, body in split_into_chunks(payload, chunk_size):
            result = assembler.feed(marker, body)
        assert result == payload
