"""Record lane: capture every transport operation into a corpus.

A measurement study lives or dies by re-runnability, but a live grab
can never be re-run identically — the peer answers differently, or is
gone.  This module turns one-shot live traffic into a durable fixture:
a :class:`CaptureNetwork` wraps any network surface the grabber
consumes (the simulated :class:`~repro.netsim.net.NetworkView` or the
live :class:`~repro.scanner.campaign.LiveNetwork`) and records, per
target, everything the scanner observed:

* every ``connect`` outcome (success, or the failure category and
  message the scanner saw);
* every ``write``/``read`` payload, per connection, in order
  (:class:`CaptureTransport` wraps the underlying
  :class:`~repro.transport.socket_io.Transport`);
* every clock observation (:class:`RecordingClock`), so replayed
  records carry the original timestamps and durations byte-for-byte;
* transport errors (timeout, reset, protocol violation) at the exact
  operation where they surfaced.

The corpus serializes as gzip-framed JSONL with the same reproducible
bytes as the dataset files (``filename=""``, ``mtime=0`` — see
:mod:`repro.dataset.io`): a header line declaring the target count,
then per target a header declaring its event count followed by one
line per event.  Declared counts make truncation loud —
:class:`CaptureFormatError` — instead of silently shrinking a corpus.

:mod:`repro.transport.replay` implements the other half: a
:class:`~repro.transport.replay.ReplayTransport` that feeds a captured
event stream back through the unchanged protocol stack.

A minimal in-memory round trip::

    >>> from repro.transport.capture import CaptureTransport
    >>> class Echo:
    ...     bytes_sent = bytes_received = 0
    ...     def write(self, data): self._last = data
    ...     def read(self): return self._last
    ...     def close(self): pass
    >>> events = []
    >>> transport = CaptureTransport(Echo(), events, connection=0)
    >>> transport.write(b"ping")
    >>> transport.read()
    b'ping'
    >>> [e["event"] for e in events]
    ['write', 'read']
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Iterator

# NOTE: repro.client and repro.dataset are imported lazily inside the
# functions that need them.  Importing them here would close an import
# cycle through the package __init__ modules (transport → capture →
# dataset → scanner → client → secure → transport).

#: Version of the corpus byte format.  Bump on any change to the event
#: vocabulary or framing; old corpora then fail loudly instead of
#: replaying garbage.
CAPTURE_SCHEMA = 1


class CaptureFormatError(ValueError):
    """A capture corpus file violates the JSONL corpus layout."""


def _iso(moment: datetime) -> str:
    """Full-precision timestamp (microseconds survive the round trip)."""
    return moment.isoformat()


class RecordingClock:
    """Wraps a clock and records every observation as an event.

    The grabber derives a record's ``timestamp`` and
    ``scan_duration_s`` from ``clock.now()`` calls, and the traversal
    paces itself with ``clock.advance()``.  Recording each observation
    (not the clock's mechanism) means replay can return the exact same
    datetimes at the exact same call points — wall clock or simulated
    clock alike — which is what makes replayed records byte-identical.
    """

    def __init__(self, inner, events: list[dict]):
        self._inner = inner
        self._events = events

    def now(self) -> datetime:
        moment = self._inner.now()
        self._events.append({"event": "now", "time": _iso(moment)})
        return moment

    def advance(self, seconds: float) -> datetime:
        moment = self._inner.advance(seconds)
        self._events.append(
            {"event": "advance", "seconds": seconds, "time": _iso(moment)}
        )
        return moment


class CaptureTransport:
    """A :class:`~repro.transport.socket_io.Transport` that records.

    Wraps any transport — :class:`~repro.netsim.net.SimSocket` or a
    live :class:`~repro.transport.socket_io.BlockingSocketTransport` —
    and mirrors every operation into the event stream: payload bytes
    for write/read, the failure category and message for operations
    that raise.  The recorded error *message* matters as much as the
    category: the scanner copies ``str(exc)`` into record fields, so
    replay must reproduce it verbatim.
    """

    def __init__(self, inner, events: list[dict], connection: int):
        self._inner = inner
        self._events = events
        self._connection = connection

    @property
    def bytes_sent(self) -> int:
        return self._inner.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._inner.bytes_received

    def _record_error(
        self, op: str, exc: BaseException, counted: int
    ) -> None:
        from repro.client.errors import categorize_error

        # ``counted``: how many bytes the failing operation added to
        # the transport's counter before raising.  Live transports
        # count a write before the drain stalls but not before a
        # deadline check; the simulator refuses before counting.  The
        # record's ``scan_bytes`` copies the counter even on failed
        # grabs, so replay must reproduce the exact observed delta —
        # recording it beats inferring it from the error category.
        self._events.append(
            {
                "event": "io-error",
                "connection": self._connection,
                "op": op,
                "category": categorize_error(exc),
                "message": str(exc),
                "counted": counted,
            }
        )

    def write(self, data: bytes) -> None:
        before = self._inner.bytes_sent
        try:
            self._inner.write(data)
        except Exception as exc:
            self._record_error(
                "write", exc, self._inner.bytes_sent - before
            )
            raise
        self._events.append(
            {
                "event": "write",
                "connection": self._connection,
                "data": data.hex(),
            }
        )

    def read(self) -> bytes:
        before = self._inner.bytes_received
        try:
            data = self._inner.read()
        except Exception as exc:
            self._record_error(
                "read", exc, self._inner.bytes_received - before
            )
            raise
        self._events.append(
            {
                "event": "read",
                "connection": self._connection,
                "data": data.hex(),
            }
        )
        return data

    def close(self) -> None:
        self._events.append(
            {"event": "close", "connection": self._connection}
        )
        self._inner.close()


class CaptureNetwork:
    """Wraps the grabber's network surface, recording one target.

    Duck-types what :func:`~repro.scanner.grabber.grab_host` consumes:
    ``host`` (the ground-truth observation, recorded so replay can
    reproduce the ``asn`` field), ``clock`` (a
    :class:`RecordingClock`), and ``connect`` (each connection's
    outcome plus a :class:`CaptureTransport` around the socket).
    """

    def __init__(self, inner, events: list[dict]):
        self._inner = inner
        self._events = events
        self._connections = 0
        self.clock = RecordingClock(inner.clock, events)

    def host(self, address: int):
        host = self._inner.host(address)
        self._events.append(
            {
                "event": "host",
                "asn": None if host is None else host.asn,
                "known": host is not None,
            }
        )
        return host

    def connect(self, address: int, port: int):
        from repro.client.errors import categorize_error

        try:
            socket = self._inner.connect(address, port)
        except Exception as exc:
            self._events.append(
                {
                    "event": "connect-error",
                    "category": categorize_error(exc),
                    "message": str(exc),
                }
            )
            raise
        connection = self._connections
        self._connections += 1
        self._events.append(
            {"event": "connect", "connection": connection}
        )
        return CaptureTransport(socket, self._events, connection)


@dataclass
class TargetCapture:
    """Everything recorded while grabbing one ``(address, port)``."""

    address: int
    port: int
    events: list[dict] = field(default_factory=list)

    @property
    def key(self) -> tuple[int, int]:
        return (self.address, self.port)


@dataclass
class CaptureCorpus:
    """One recorded scan: per-target event streams plus run metadata.

    ``meta`` carries what replay needs to rebuild the exact scanner
    that recorded the corpus (seed, RNG namespace, identity
    parameters, traversal settings) and the snapshot-level counters
    (label, probed, excluded) that are not derivable from the event
    streams.
    """

    meta: dict = field(default_factory=dict)
    targets: list[TargetCapture] = field(default_factory=list)

    def target_map(self) -> dict[tuple[int, int], TargetCapture]:
        return {target.key: target for target in self.targets}

    def digest(self) -> str:
        """SHA-256 over the corpus's canonical JSONL lines."""
        digest = hashlib.sha256()
        for line in _corpus_lines(self):
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()


class CaptureRecorder:
    """Collects per-target captures across concurrent grab workers.

    One recorder serves one campaign run: each grab wraps its network
    in :meth:`wrap` (thread-safe — grabs fan out across executor
    workers), and :meth:`finish` stamps the snapshot-level metadata
    once the sweep completes.  :meth:`corpus` emits the targets in
    canonical ``(address, port)`` order, so the corpus bytes are
    independent of grab completion order.
    """

    def __init__(self, meta: dict | None = None):
        self._meta = dict(meta or {})
        self._targets: dict[tuple[int, int], TargetCapture] = {}
        self._lock = threading.Lock()

    def wrap(self, network, address: int, port: int) -> CaptureNetwork:
        capture = TargetCapture(address=address, port=port)
        with self._lock:
            if capture.key in self._targets:
                raise ValueError(
                    f"target {capture.key} captured twice in one run"
                )
            self._targets[capture.key] = capture
        return CaptureNetwork(network, capture.events)

    def finish(self, snapshot, traverse: bool, budget) -> None:
        """Record snapshot counters + replay-relevant scan settings."""
        self._meta.update(
            {
                "label": snapshot.date,
                "probed": snapshot.probed,
                "excluded": snapshot.excluded,
                "traverse": traverse,
                "budget": {
                    "inter_request_delay_s": budget.inter_request_delay_s,
                    "max_scan_seconds": budget.max_scan_seconds,
                    "max_bytes": budget.max_bytes,
                },
            }
        )

    def corpus(self) -> CaptureCorpus:
        with self._lock:
            targets = sorted(
                self._targets.values(), key=lambda t: t.key
            )
        return CaptureCorpus(meta=dict(self._meta), targets=targets)


# --- corpus serialization ----------------------------------------------------


def _corpus_lines(corpus: CaptureCorpus) -> Iterator[str]:
    yield json.dumps(
        {
            "capture_corpus": CAPTURE_SCHEMA,
            "meta": corpus.meta,
            "targets": len(corpus.targets),
        },
        sort_keys=True,
    )
    for target in corpus.targets:
        yield json.dumps(
            {
                "target": {
                    "address": target.address,
                    "port": target.port,
                    "events": len(target.events),
                }
            },
            sort_keys=True,
        )
        for event in target.events:
            yield json.dumps(event, sort_keys=True)


def write_corpus(path: str | Path, corpus: CaptureCorpus) -> None:
    """Serialize a corpus (``.gz`` suffix → reproducible gzip bytes)."""
    from repro.dataset.io import canonical_open_write

    with canonical_open_write(path) as handle:
        for line in _corpus_lines(corpus):
            handle.write(line + "\n")


def read_corpus(path: str | Path) -> CaptureCorpus:
    """Parse and validate a corpus file.

    Every malformed shape — truncated tail, corrupted gzip stream,
    invalid JSON, event counts that disagree with their headers —
    raises :class:`CaptureFormatError` with the offending line number.
    """
    from repro.dataset.io import (
        canonical_open_read,
        iter_decompressed_lines,
    )

    path = Path(path)
    corpus: CaptureCorpus | None = None
    current: TargetCapture | None = None
    seen_keys: set[tuple[int, int]] = set()
    remaining = declared_targets = 0
    with canonical_open_read(path) as handle:
        try:
            for number, line in enumerate(
                iter_decompressed_lines(path, handle), 1
            ):
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CaptureFormatError(
                        f"{path}:{number}: not valid JSON "
                        f"(truncated write?): {exc}"
                    ) from None
                if not isinstance(data, dict):
                    raise CaptureFormatError(
                        f"{path}:{number}: expected a JSON object, "
                        f"found {type(data).__name__}"
                    )
                if corpus is None:
                    if "capture_corpus" not in data:
                        raise CaptureFormatError(
                            f"{path}:1: missing capture_corpus header"
                        )
                    if data["capture_corpus"] != CAPTURE_SCHEMA:
                        raise CaptureFormatError(
                            f"{path}: corpus schema "
                            f"{data['capture_corpus']!r}, this code "
                            f"expects {CAPTURE_SCHEMA}"
                        )
                    corpus = CaptureCorpus(meta=data.get("meta", {}))
                    declared_targets = data.get("targets", 0)
                elif "target" in data:
                    if remaining:
                        raise CaptureFormatError(
                            f"{path}:{number}: target "
                            f"{current.key!r} declared "
                            f"{len(current.events) + remaining} events "
                            f"but only {len(current.events)} precede "
                            "the next target header"
                        )
                    header = data["target"]
                    if (
                        not isinstance(header, dict)
                        or "address" not in header
                        or "port" not in header
                    ):
                        raise CaptureFormatError(
                            f"{path}:{number}: target header missing "
                            "address/port"
                        )
                    current = TargetCapture(
                        address=header["address"], port=header["port"]
                    )
                    if current.key in seen_keys:
                        raise CaptureFormatError(
                            f"{path}:{number}: duplicate target "
                            f"{current.key!r} — replay would silently "
                            "drop one of the event streams"
                        )
                    seen_keys.add(current.key)
                    corpus.targets.append(current)
                    remaining = header.get("events", 0)
                else:
                    if current is None:
                        raise CaptureFormatError(
                            f"{path}:{number}: event line before any "
                            "target header"
                        )
                    if remaining <= 0:
                        raise CaptureFormatError(
                            f"{path}:{number}: target {current.key!r} "
                            "has more event lines than its header "
                            "declared"
                        )
                    if "event" not in data:
                        raise CaptureFormatError(
                            f"{path}:{number}: event line without an "
                            "'event' field"
                        )
                    current.events.append(data)
                    remaining -= 1
        except CaptureFormatError:
            raise
        except ValueError as exc:
            # iter_decompressed_lines maps gzip corruption to
            # DatasetFormatError (a ValueError); re-badge it so corpus
            # callers catch one exception type.
            raise CaptureFormatError(str(exc)) from None
    if corpus is None:
        raise CaptureFormatError(f"{path}: empty corpus file")
    if remaining:
        raise CaptureFormatError(
            f"{path}: truncated file: target {current.key!r} declared "
            f"{len(current.events) + remaining} events but the file "
            f"ends after {len(current.events)}"
        )
    if len(corpus.targets) != declared_targets:
        raise CaptureFormatError(
            f"{path}: truncated file: header declared "
            f"{declared_targets} targets, found {len(corpus.targets)}"
        )
    return corpus
