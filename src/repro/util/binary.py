"""Little-endian binary reader/writer used by the OPC UA codec.

OPC UA's binary encoding (OPC 10000-6) is little-endian throughout, so
the reader/writer default to little-endian and expose the fixed-width
primitives the encoding needs.  DER encoding (big-endian lengths) uses
its own routines in :mod:`repro.asn1.der` and does not share this class.
"""

from __future__ import annotations

import struct


class NotEnoughData(Exception):
    """Raised when a read runs past the end of the buffer."""


class BinaryReader:
    """Sequential reader over an immutable byte buffer."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def peek(self, count: int) -> bytes:
        if self.remaining < count:
            raise NotEnoughData(
                f"peek of {count} bytes with only {self.remaining} remaining"
            )
        return self._data[self._pos : self._pos + count]

    def read_bytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError("negative read length")
        if self.remaining < count:
            raise NotEnoughData(
                f"read of {count} bytes with only {self.remaining} remaining"
            )
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return out

    def skip(self, count: int) -> None:
        self.read_bytes(count)

    def _unpack(self, fmt: str, size: int):
        return struct.unpack_from(fmt, self.read_bytes(size))[0]

    def read_uint8(self) -> int:
        return self._unpack("<B", 1)

    def read_int8(self) -> int:
        return self._unpack("<b", 1)

    def read_uint16(self) -> int:
        return self._unpack("<H", 2)

    def read_int16(self) -> int:
        return self._unpack("<h", 2)

    def read_uint32(self) -> int:
        return self._unpack("<I", 4)

    def read_int32(self) -> int:
        return self._unpack("<i", 4)

    def read_uint64(self) -> int:
        return self._unpack("<Q", 8)

    def read_int64(self) -> int:
        return self._unpack("<q", 8)

    def read_float(self) -> float:
        return self._unpack("<f", 4)

    def read_double(self) -> float:
        return self._unpack("<d", 8)


class BinaryWriter:
    """Append-only little-endian byte buffer."""

    def __init__(self):
        self._chunks: list[bytes] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def to_bytes(self) -> bytes:
        if len(self._chunks) > 1:
            self._chunks = [b"".join(self._chunks)]
        return self._chunks[0] if self._chunks else b""

    def write_bytes(self, data: bytes) -> None:
        self._chunks.append(bytes(data))
        self._length += len(data)

    def _pack(self, fmt: str, value) -> None:
        self.write_bytes(struct.pack(fmt, value))

    def write_uint8(self, value: int) -> None:
        self._pack("<B", value)

    def write_int8(self, value: int) -> None:
        self._pack("<b", value)

    def write_uint16(self, value: int) -> None:
        self._pack("<H", value)

    def write_int16(self, value: int) -> None:
        self._pack("<h", value)

    def write_uint32(self, value: int) -> None:
        self._pack("<I", value)

    def write_int32(self, value: int) -> None:
        self._pack("<i", value)

    def write_uint64(self, value: int) -> None:
        self._pack("<Q", value)

    def write_int64(self, value: int) -> None:
        self._pack("<q", value)

    def write_float(self, value: float) -> None:
        self._pack("<f", value)

    def write_double(self, value: float) -> None:
        self._pack("<d", value)
