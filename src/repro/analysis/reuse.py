"""§5.3 — secrets not meant to be shared (Figure 5).

Groups hosts by certificate thumbprint to find certificates installed
on multiple devices, measures their autonomous-system spread, and runs
the pairwise shared-prime check over all RSA moduli (the paper found
no weak keys; neither should the simulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.scanner.records import HostRecord


@dataclass
class ReuseGroup:
    thumbprint_hex: str
    host_count: int
    asn_count: int
    subject: str
    hosts: list[int] = field(default_factory=list)  # record indices


@dataclass
class ReuseAnalysis:
    distinct_certificates: int = 0
    groups: list[ReuseGroup] = field(default_factory=list)  # size >= 2
    reused_on_3plus: list[ReuseGroup] = field(default_factory=list)
    shared_prime_pairs: int = 0

    @property
    def largest_group(self) -> ReuseGroup | None:
        return self.groups[0] if self.groups else None

    @property
    def hosts_affected(self) -> int:
        return sum(group.host_count for group in self.reused_on_3plus)


def analyze_certificate_reuse(records: list[HostRecord]) -> ReuseAnalysis:
    by_thumbprint: dict[str, list[int]] = {}
    subjects: dict[str, str] = {}
    for index, record in enumerate(records):
        certificate = record.certificate
        if certificate is None:
            continue
        by_thumbprint.setdefault(certificate.thumbprint_hex, []).append(index)
        subjects[certificate.thumbprint_hex] = certificate.subject

    analysis = ReuseAnalysis(distinct_certificates=len(by_thumbprint))
    for thumbprint, indices in by_thumbprint.items():
        if len(indices) < 2:
            continue
        asns = {records[i].asn for i in indices if records[i].asn is not None}
        group = ReuseGroup(
            thumbprint_hex=thumbprint,
            host_count=len(indices),
            asn_count=len(asns),
            subject=subjects[thumbprint],
            hosts=indices,
        )
        analysis.groups.append(group)
    analysis.groups.sort(key=lambda g: g.host_count, reverse=True)
    analysis.reused_on_3plus = [g for g in analysis.groups if g.host_count >= 3]
    analysis.shared_prime_pairs = find_shared_primes(records)
    return analysis


def find_shared_primes(records: list[HostRecord]) -> int:
    """Pairwise GCD over distinct moduli; returns offending pairs.

    A nontrivial GCD between two distinct RSA moduli exposes both
    private keys (Heninger et al.) — the paper checked for this and
    found nothing.
    """
    moduli = sorted(
        {
            record.certificate.modulus
            for record in records
            if record.certificate is not None
        }
    )
    shared = 0
    for i, first in enumerate(moduli):
        for second in moduli[i + 1 :]:
            gcd = math.gcd(first, second)
            if gcd not in (1, first, second):
                shared += 1
    return shared
