"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StudyConfig:
    """Knobs of a full study run.

    ``noise_hosts`` adds non-OPC UA services on TCP/4840 to each sweep
    (the paper found OPC UA on only 0.5 ‰ of hosts with the port open;
    simulating millions of such hosts is pointless, so a token number
    keeps the code path exercised — documented in DESIGN.md).
    ``traverse_all_sweeps`` enables the address-space traversal on
    every sweep instead of only the last (Figure 7 uses the latest
    measurement, so the default keeps weekly sweeps fast).

    ``executor``/``workers`` select the scan backend (see
    :mod:`repro.scanner.executor`): ``serial`` (the default),
    ``thread``, or ``process``.  Snapshots are bit-identical across
    backends; only wall-clock time changes.
    """

    seed: int = 20200830
    noise_hosts: int = 40
    traverse_all_sweeps: bool = False
    follow_references_from_sweep: int = 3  # 2020-05-04, as in the paper
    extra_sweep_candidates: int = 500  # random empty addresses probed
    executor: str = "serial"
    workers: int = 1
