"""Rendering for merged :class:`~repro.analysis.pipeline.AnalysisReport`s.

``repro analyze`` prints this: one headline line per registered
analysis, in the registry's canonical order, plus the report digest —
the same digest the backend-equivalence tests pin, so two runs that
print the same digest computed byte-identical analyses.
"""

from __future__ import annotations

from repro.reporting.tables import render_table


def _headline(name: str, result) -> str:
    """One human-readable takeaway per analysis."""
    if name == "modes":
        return (
            f"{result.total_servers} servers; "
            f"{result.supports_secure_mode} offer a secure mode, "
            f"{result.none_only} are None-only"
        )
    if name == "policies":
        return (
            f"{result.supports_deprecated} support a deprecated policy, "
            f"{result.deprecated_as_best} have one as their best, "
            f"{result.enforce_secure} enforce strong policies"
        )
    if name == "certs":
        return (
            f"{result.servers_with_certificate} certificates, "
            f"{result.ca_signed} CA-signed, "
            f"{result.weaker_than_best_policy} weaker than best policy"
        )
    if name == "reuse":
        return (
            f"{result.distinct_certificates} distinct certificates, "
            f"{len(result.reused_on_3plus)} groups on >=3 hosts "
            f"({result.hosts_affected} hosts), "
            f"{result.shared_prime_pairs} shared-prime pairs"
        )
    if name == "access":
        return (
            f"{result.accessible} anonymously accessible "
            f"({result.production} production); "
            f"{result.rejected_authentication} auth-rejected, "
            f"{result.rejected_secure_channel} channel-rejected"
        )
    if name == "rights":
        return f"{result.hosts_analyzed} hosts with traversed address spaces"
    if name == "deficits":
        return (
            f"{result.deficient}/{result.total_servers} deficient "
            f"({result.deficient_fraction:.1%})"
        )
    if name == "breakdown":
        totals = ", ".join(
            f"{cls}={result.class_total(cls)}"
            for cls in result.by_manufacturer
        )
        return totals
    if name == "longitudinal":
        return (
            f"{len(result.sweeps)} sweeps, "
            f"avg {result.avg_deficient_fraction:.1%} deficient, "
            f"{result.renewal_count} renewals "
            f"({result.upgrades} hash upgrades)"
        )
    if name == "ipv6":
        return (
            f"IPv6 sample: {result.ipv6_servers}/{result.hitlist_size} "
            f"hosts, {result.ipv6_deficient_fraction:.1%} deficient "
            f"(IPv4 {result.ipv4_deficient_fraction:.1%})"
        )
    return type(result).__name__


def render_analysis_report(report) -> str:
    rows = [
        [name, _headline(name, result)]
        for name, result in report.results.items()
    ]
    table = render_table(
        ["analysis", "headline"],
        rows,
        title=f"Analysis report (seed {report.seed}, {report.sweeps} sweeps)",
    )
    return f"{table}\n\nreport digest: {report.digest()}"
