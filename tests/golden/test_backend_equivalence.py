"""Cross-backend equivalence matrix: serial == thread == process == async.

Every executor backend must reproduce the committed golden digests
bit-for-bit on the tiny-spec study.  This replaces the full-study
benchmark as the PR-gating guarantee — the benchmark still runs on
main, but a backend divergence now fails in the fast tier.

Worker counts are deliberately larger than the batch count is wide:
with ``TINY_BATCH_SIZE`` (16) candidates per stage-0 task the tiny
sweep spans ~10 probe batches, so pools genuinely interleave probing
and grabbing rather than degenerating into serial execution.
"""

from __future__ import annotations

import pytest

from repro.core.golden import run_tiny_study, study_digest, study_digests

pytestmark = pytest.mark.golden

BACKENDS = [
    pytest.param("thread", 4, id="thread"),
    pytest.param("process", 4, id="process"),
    pytest.param("async", 8, id="async"),
]


@pytest.mark.parametrize("backend,workers", BACKENDS)
def test_backend_matches_serial_reference(
    backend, workers, serial_tiny_result, committed_digests
):
    result = run_tiny_study(backend, workers)
    per_sweep = study_digests(result)
    assert per_sweep == study_digests(serial_tiny_result), (
        f"{backend} backend diverged from the serial reference"
    )
    # ... and from the committed goldens, so a bug that breaks serial
    # and a parallel backend identically still cannot slip through.
    assert per_sweep == committed_digests["per_sweep"]
    assert study_digest(result) == committed_digests["digest"]
