"""Session lifecycle: CreateSession → ActivateSession → (use) → Close."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.secure.policies import POLICY_NONE
from repro.server.access import UserContext
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCodes


@dataclass
class Session:
    session_id: NodeId
    authentication_token: NodeId
    name: str
    timeout_ms: float
    client_nonce: bytes | None = None
    server_nonce: bytes = b""
    activated: bool = False
    user: UserContext | None = None
    # Security of the channel the session was created on; activation
    # must arrive over a channel with the same pair.
    security_policy_uri: str = POLICY_NONE.uri
    security_mode: int = 1

    @property
    def role(self):
        if self.user is None:
            raise RuntimeError("session not activated")
        return self.user.role


class SessionManager:
    """Tracks sessions by their authentication token."""

    def __init__(self, rng: random.Random, max_sessions: int = 100):
        self._rng = rng
        self._max_sessions = max_sessions
        self._by_token: dict[bytes, Session] = {}
        self._next_numeric = 1

    def __len__(self) -> int:
        return len(self._by_token)

    def create(
        self,
        name: str,
        timeout_ms: float,
        client_nonce: bytes | None,
        security_policy_uri: str = POLICY_NONE.uri,
        security_mode: int = 1,
    ) -> Session:
        if len(self._by_token) >= self._max_sessions:
            from repro.server.auth import AuthenticationError

            raise AuthenticationError(StatusCodes.BadTooManySessions)
        token_bytes = self._rng.getrandbits(128).to_bytes(16, "big")
        session = Session(
            session_id=NodeId(1, self._next_numeric),
            authentication_token=NodeId(0, token_bytes),
            name=name,
            timeout_ms=timeout_ms,
            client_nonce=client_nonce,
            server_nonce=self._rng.getrandbits(256).to_bytes(32, "big"),
            security_policy_uri=security_policy_uri,
            security_mode=security_mode,
        )
        self._next_numeric += 1
        self._by_token[token_bytes] = session
        return session

    def lookup(self, authentication_token: NodeId) -> Session | None:
        ident = authentication_token.identifier
        if not isinstance(ident, bytes):
            return None
        return self._by_token.get(ident)

    def close(self, session: Session) -> None:
        ident = session.authentication_token.identifier
        self._by_token.pop(ident, None)

    def activate(self, session: Session, user: UserContext) -> None:
        session.activated = True
        session.user = user
        # Fresh nonce for each activation, per spec.
        session.server_nonce = self._rng.getrandbits(256).to_bytes(32, "big")
