"""Regenerates Figure 6 and Table 2 (authentication & accessibility)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig6_table2_access(benchmark, study_result):
    report = benchmark(run_experiment, "fig6-table2", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
