"""Probabilistic prime generation for RSA key material.

Deterministic given the caller's RNG, which lets the deployment
generator mint reproducible per-host keys.  Candidates are filtered by
trial division against a small-prime sieve before Miller–Rabin, which
is the difference between ~5 s and ~0.25 s for a 1024-bit prime in
CPython.
"""

from __future__ import annotations

import random


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES: list[int] = _sieve(10_000)


def is_probable_prime(candidate: int, rng: random.Random | None = None, rounds: int = 16) -> bool:
    """Miller–Rabin with trial division; error probability < 4**-rounds."""
    if candidate < 2:
        return False
    for p in SMALL_PRIMES:
        if candidate % p == 0:
            return candidate == p
    rng = rng or random.Random(candidate & 0xFFFFFFFF)
    d = candidate - 1
    twos = 0
    while d % 2 == 0:
        d //= 2
        twos += 1
    for _ in range(rounds):
        base = rng.randrange(2, candidate - 1)
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(twos - 1):
            x = x * x % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with the top two bits set.

    Setting the two most significant bits guarantees that the product
    of two such primes has exactly ``2 * bits`` bits, so RSA moduli hit
    their nominal size — the paper's analysis reads key lengths off the
    modulus, and an off-by-one-bit key would land in the wrong bucket.
    """
    if bits < 8:
        raise ValueError("prime too small for RSA use")
    top_two = (1 << (bits - 1)) | (1 << (bits - 2))
    while True:
        candidate = rng.getrandbits(bits) | top_two | 1
        if is_probable_prime(candidate, rng):
            return candidate
