"""A from-scratch OPC UA binary client.

Implements the exact grab sequence the paper's zgrab2 module performs:
Hello/Acknowledge, GetEndpoints, OpenSecureChannel (presenting a
self-signed certificate on secure policies), CreateSession /
ActivateSession, and address-space access via Browse/Read/Call.
"""

from repro.client.errors import (
    ConnectionClosedError,
    ServiceFaultError,
    TransportRejectedError,
    UaClientError,
)
from repro.client.client import ClientIdentity, UaClient

__all__ = [
    "ClientIdentity",
    "ConnectionClosedError",
    "ServiceFaultError",
    "TransportRejectedError",
    "UaClient",
]
