import uuid

import pytest
from hypothesis import given, strategies as st

from repro.uabin.nodeid import ExpandedNodeId, NodeId
from repro.util.binary import BinaryReader, BinaryWriter


def round_trip(node_id):
    w = BinaryWriter()
    node_id.encode(w)
    r = BinaryReader(w.to_bytes())
    out = type(node_id).decode(r)
    assert r.at_end()
    return out


class TestEncodingSelection:
    def test_two_byte(self):
        data = NodeId(0, 255).to_bytes()
        assert data == b"\x00\xff"

    def test_four_byte(self):
        data = NodeId(5, 1025).to_bytes()
        assert data[0] == 0x01
        assert len(data) == 4

    def test_numeric(self):
        data = NodeId(300, 70000).to_bytes()
        assert data[0] == 0x02
        assert len(data) == 7

    def test_string(self):
        data = NodeId(2, "Demo").to_bytes()
        assert data[0] == 0x03

    def test_guid(self):
        data = NodeId(1, uuid.uuid5(uuid.NAMESPACE_URL, "x")).to_bytes()
        assert data[0] == 0x04
        assert len(data) == 19

    def test_bytestring(self):
        data = NodeId(1, b"\x01\x02").to_bytes()
        assert data[0] == 0x05


class TestRoundTrips:
    @pytest.mark.parametrize(
        "node_id",
        [
            NodeId(0, 0),
            NodeId(0, 84),
            NodeId(1, 84),
            NodeId(0, 65536),
            NodeId(700, 1),
            NodeId(2, "Objects/Demo"),
            NodeId(2, ""),
            NodeId(3, b"opaque-id"),
            NodeId(4, uuid.UUID(int=0x1234)),
        ],
    )
    def test_round_trip(self, node_id):
        assert round_trip(node_id) == node_id

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFFFFFF))
    def test_numeric_property(self, ns, ident):
        assert round_trip(NodeId(ns, ident)) == NodeId(ns, ident)

    @given(st.integers(0, 0xFFFF), st.text(max_size=60))
    def test_string_property(self, ns, ident):
        assert round_trip(NodeId(ns, ident)) == NodeId(ns, ident)


class TestValidation:
    def test_namespace_out_of_range(self):
        with pytest.raises(ValueError):
            NodeId(70000, 1)

    def test_numeric_out_of_range(self):
        with pytest.raises(ValueError):
            NodeId(0, 2**32)

    def test_invalid_encoding_byte(self):
        with pytest.raises(ValueError):
            NodeId.decode(BinaryReader(b"\x3f\x00\x00"))


class TestTextForm:
    def test_numeric(self):
        assert NodeId(0, 2253).to_string() == "i=2253"
        assert NodeId(2, 1).to_string() == "ns=2;i=1"

    def test_string(self):
        assert NodeId(2, "a/b").to_string() == "ns=2;s=a/b"

    def test_parse_round_trip(self):
        for text in ("i=85", "ns=2;i=1", "ns=2;s=Demo", "b=0102"):
            assert NodeId.from_string(text).to_string() == text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            NodeId.from_string("wat")

    def test_is_null(self):
        assert NodeId().is_null
        assert not NodeId(0, 1).is_null


class TestExpandedNodeId:
    def test_plain_round_trip(self):
        value = ExpandedNodeId(NodeId(2, 5))
        assert round_trip(value) == value

    def test_with_namespace_uri(self):
        value = ExpandedNodeId(NodeId(0, 5), namespace_uri="urn:demo")
        out = round_trip(value)
        assert out.namespace_uri == "urn:demo"

    def test_with_server_index(self):
        value = ExpandedNodeId(NodeId(0, 5), server_index=3)
        assert round_trip(value).server_index == 3

    def test_flags_encoded_in_first_byte(self):
        w = BinaryWriter()
        ExpandedNodeId(NodeId(0, 5), namespace_uri="u", server_index=1).encode(w)
        first = w.to_bytes()[0]
        assert first & 0x80 and first & 0x40
