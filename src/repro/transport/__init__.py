"""OPC UA TCP transport (OPC 10000-6 §7): message framing and chunking.

The binary interface on TCP/4840 frames every message with a 3-letter
type, a chunk marker, and a length; connections start with a
Hello/Acknowledge exchange.  This layer is deliberately independent of
the secure-channel crypto — it moves opaque chunks.
"""

from repro.transport.messages import (
    AcknowledgeMessage,
    ErrorMessage,
    HelloMessage,
    MessageHeader,
    MessageType,
    TransportError,
)
from repro.transport.chunks import (
    ChunkAssembler,
    ChunkType,
    split_into_chunks,
)
from repro.transport.connection import FrameReader, encode_frame

__all__ = [
    "AcknowledgeMessage",
    "ChunkAssembler",
    "ChunkType",
    "ErrorMessage",
    "FrameReader",
    "HelloMessage",
    "MessageHeader",
    "MessageType",
    "TransportError",
    "encode_frame",
    "split_into_chunks",
]
