"""The population spec must encode the paper's numbers exactly."""

import pytest

from repro.deployments.profiles import (
    CERT_CLASSES,
    POLICY_GROUPS,
)
from repro.deployments.spec import (
    AUTH,
    PAPER_TOTALS,
    SC,
    build_default_spec,
    spec_row_is_deficient,
)
from repro.secure.policies import POLICY_NONE
from repro.uabin.enums import MessageSecurityMode

N = MessageSecurityMode.NONE
S = MessageSecurityMode.SIGN
SE = MessageSecurityMode.SIGN_AND_ENCRYPT


@pytest.fixture(scope="module")
def spec():
    return build_default_spec()


class TestSpecTotals:
    def test_validates(self, spec):
        spec.validate()  # raises on any drift

    def test_server_count(self, spec):
        assert spec.total_servers == 1114

    def test_deficient_is_92_percent(self, spec):
        assert spec.deficient_count() == 1025
        assert round(spec.deficient_count() / spec.total_servers, 2) == 0.92


class TestFigure3Marginals:
    @pytest.mark.parametrize(
        "mode,supported,least,most",
        [(N, 1035, 1035, 270), (S, 588, 28, 1), (SE, 843, 51, 843)],
    )
    def test_modes(self, spec, mode, supported, least, most):
        assert spec.mode_supported(mode) == supported
        assert spec.mode_least(mode) == least
        assert spec.mode_most(mode) == most

    @pytest.mark.parametrize(
        "label,supported,least,most",
        [
            ("N", 1035, 1035, 270),
            ("D1", 715, 13, 24),
            ("D2", 762, 50, 256),
            ("S1", 10, 0, 0),
            ("S2", 564, 16, 556),
            ("S3", 8, 0, 8),
        ],
    )
    def test_policies(self, spec, label, supported, least, most):
        assert spec.policy_supported(label) == supported
        assert spec.policy_least(label) == least
        assert spec.policy_most(label) == most

    def test_deprecated_union(self, spec):
        d1 = {"P1", "P2", "P4", "P4s1", "Q1"}
        union = spec.count_where(
            lambda r: r.policy_group in d1
            or r.policy_group in {"P3", "P8", "Q2"}
        )
        assert union == 786


class TestTable2:
    def test_accessible_columns(self, spec):
        assert spec.count_where(lambda r: r.accessible) == 493
        assert spec.count_where(
            lambda r: r.outcome == "accessible-production"
        ) == 295
        assert spec.count_where(lambda r: r.outcome == "accessible-test") == 42
        assert spec.count_where(
            lambda r: r.outcome == "accessible-unclassified"
        ) == 156

    def test_rejection_columns(self, spec):
        assert spec.count_where(lambda r: r.outcome == AUTH) == 541
        assert spec.count_where(lambda r: r.outcome == SC) == 80

    def test_anonymous_counts(self, spec):
        assert spec.count_where(lambda r: r.offers_anonymous) == 572
        channel_ok_anon = spec.count_where(
            lambda r: r.offers_anonymous and r.outcome != SC
        )
        assert channel_ok_anon == 563

    def test_forced_secure_accessible(self, spec):
        forced = spec.count_where(
            lambda r: r.accessible and N not in r.mode_set
        )
        assert forced == PAPER_TOTALS["forced_secure_accessible"] == 71


class TestCertificates:
    def test_md5_hosts_exist(self, spec):
        assert spec.count_where(lambda r: r.cert_class == "md5-1024") == 7

    def test_4096_bit_hosts(self, spec):
        assert spec.count_where(lambda r: r.cert_class == "sha256-4096") == 5

    def test_reuse_groups(self, spec):
        assert spec.reuse_group_size("R1") == 385
        assert spec.reuse_group_size("R2") == 9
        assert spec.reuse_group_size("R3") == 6
        assert spec.reuse_group_size("R4") == 5

    def test_reuse_only_deficit_hosts(self, spec):
        """R4's five hosts are deficient *only* through reuse (§5.3)."""
        for row in spec.rows:
            if row.reuse_group != "R4":
                continue
            assert spec_row_is_deficient(row)
            without_reuse = type(row)(
                **{
                    **row.__dict__,
                    "reuse_group": None,
                    "row_id": row.row_id + "-clone",
                }
            )
            assert not spec_row_is_deficient(without_reuse)


class TestStructuralConsistency:
    def test_sc_rejected_hosts_have_secure_endpoints(self, spec):
        for row in spec.rows:
            if row.outcome == SC:
                assert any(m != N for m in row.mode_set), row.row_id

    def test_accessible_rows_offer_anonymous(self, spec):
        for row in spec.rows:
            if row.accessible:
                assert row.offers_anonymous, row.row_id

    def test_policy_group_mode_consistency(self, spec):
        """Policy None <=> mode None (OPC UA invariant)."""
        for row in spec.rows:
            group = POLICY_GROUPS[row.policy_group]
            assert (POLICY_NONE in group.policies) == (N in row.mode_set), (
                row.row_id
            )

    def test_anon_secure_only_host_is_unique(self, spec):
        rows = [r for r in spec.rows if r.anon_on_secure_only]
        assert len(rows) == 1
        assert rows[0].count == 1
        assert rows[0].outcome == SC

    def test_cert_classes_are_known(self, spec):
        for row in spec.rows:
            assert row.cert_class in CERT_CLASSES
