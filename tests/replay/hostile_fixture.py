"""Builders behind the committed *hostile* replay corpus.

The main corpus (``corpus.jsonl.gz``) records well-behaved outcomes;
``hostile_corpus.jsonl.gz`` records three device-zoo personalities
over the same real-loopback lane — a junk HTTP banner, a stack that
drops mid-handshake, and a full engine serving a long-expired
certificate — and ``hostile.digest.json`` pins the snapshot replay
must reproduce.  Same recipe as :mod:`tests.replay.fixture`, separate
files: regenerating the hostile corpus never touches the original.
"""

from __future__ import annotations

from repro.deployments.personalities import personality
from repro.scanner.campaign import (
    LiveScanCampaign,
    LiveScanConfig,
    ReplayScanCampaign,
)
from repro.scanner.limits import ScanRateLimiter
from repro.server import TcpServerHost, UaServer
from repro.server.engine import ServerConfig
from repro.transport.capture import CaptureCorpus, CaptureRecorder
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed

from tests.replay.fixture import (
    FIXTURE_DIR,
    LABEL,
    LOOPBACK,
    SEED,
    fixture_budget,
    fixture_identity,
    fixture_server,
)

HOSTILE_CORPUS_PATH = FIXTURE_DIR / "hostile_corpus.jsonl.gz"
HOSTILE_DIGEST_PATH = FIXTURE_DIR / "hostile.digest.json"

#: Namespace of the hostile campaign's RNG tree (record and replay).
HOSTILE_RNG_NAMESPACE = "replay-hostile-fixture"

#: The personalities the corpus records, in target order.
HOSTILE_PERSONALITIES = ("junk-banner", "mid-handshake-drop", "expired-cert")


def hostile_rng() -> DeterministicRng:
    return DeterministicRng(SEED, HOSTILE_RNG_NAMESPACE)


def expired_cert_server(keys) -> UaServer:
    """A fully working engine whose certificate expired in 2012."""
    spec = personality("expired-cert")
    certificate = make_self_signed(
        keys,
        common_name="legacy-plc",
        application_uri="urn:repro:tests:legacy-plc",
        not_before=parse_utc(spec.cert_not_before),
        hash_name="sha1",
        rng=DeterministicRng(SEED, "hostile-legacy-cert"),
        valid_days=spec.cert_valid_days,
    )
    config = ServerConfig(
        application_uri="urn:repro:tests:legacy-plc",
        application_name="Legacy PLC",
        endpoint_url="opc.tcp://127.0.0.1:4840/",
        certificate=certificate,
        private_key=keys.private,
    )
    return UaServer(config, DeterministicRng(SEED, "hostile-legacy-server"))


def record_hostile_corpus(keys):
    """Re-record the hostile scan over real loopback sockets.

    Three targets, three pathologies: an HTTP banner on the OPC UA
    port, an engine whose transport vanishes after Hello/Acknowledge,
    and an engine serving an expired certificate.  Returns
    ``(corpus, live_snapshot)`` for round-trip verification.
    """
    recorder = CaptureRecorder(
        {"seed": SEED, "rng_namespace": HOSTILE_RNG_NAMESPACE}
    )
    campaign = LiveScanCampaign(
        fixture_identity(keys),
        hostile_rng(),
        config=LiveScanConfig(workers=4, traverse=True),
        limiter=ScanRateLimiter(
            rate_per_s=10_000, per_host_interval_s=0.0
        ),
        budget=fixture_budget(),
        recorder=recorder,
    )
    junk_factory = personality("junk-banner").wrap_connection(None)
    drop_factory = personality("mid-handshake-drop").wrap_connection(
        fixture_server(keys).new_connection
    )
    with TcpServerHost(junk_factory) as (_, junk_port):
        with TcpServerHost(drop_factory) as (_, drop_port):
            with TcpServerHost(expired_cert_server(keys)) as (_, legacy_port):
                snapshot = campaign.run(
                    [
                        (LOOPBACK, junk_port),
                        (LOOPBACK, drop_port),
                        (LOOPBACK, legacy_port),
                    ],
                    label=LABEL,
                )
    return recorder.corpus(), snapshot


def replay_hostile_campaign(
    corpus: CaptureCorpus, keys, executor=None
) -> ReplayScanCampaign:
    """A replay campaign configured exactly like the recording."""
    return ReplayScanCampaign(
        corpus,
        fixture_identity(keys),
        hostile_rng(),
        executor=executor,
        budget=fixture_budget(),
        traverse=True,
    )
