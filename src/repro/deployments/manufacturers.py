"""Manufacturer profiles.

The paper attributes servers to manufacturers by manually clustering
the ``ApplicationURI`` field (Section 4): Bachmann (406 devices in the
last measurement), Beckhoff (112), Wago (78), discovery servers mostly
running the OPC Foundation reference implementation, and a long tail.

Two synthetic profiles model behaviours the paper describes without
naming the vendor:

* ``AutomataWerk`` — the industrial-control-system manufacturer whose
  certificate was found identically on 385 hosts across 24 autonomous
  systems (plus two more certificates on 9 and 6 hosts, §5.3);
* ``ControlCorp`` — the manufacturer all of whose devices only provide
  security mode and policy None (Appendix B.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Manufacturer:
    """One vendor: URI templates plus namespace vocabulary."""

    name: str
    uri_prefix: str
    product_uri: str
    subject_organization: str
    # Namespace URIs devices of this vendor expose (drives the paper's
    # production/test classification heuristic, §5.4).
    namespace_uris: tuple[str, ...]
    sector: str = "factory automation"

    def application_uri(self, device_index: int) -> str:
        return f"{self.uri_prefix}:device:{device_index}"


BACHMANN = Manufacturer(
    name="Bachmann",
    uri_prefix="urn:bachmann:m1",
    product_uri="urn:bachmann:m1:controller",
    subject_organization="Bachmann electronic GmbH",
    namespace_uris=("http://bachmann.info/UA/M1",),
    sector="energy systems",
)

BECKHOFF = Manufacturer(
    name="Beckhoff",
    uri_prefix="urn:beckhoff:twincat",
    product_uri="urn:beckhoff:twincat:plc",
    subject_organization="Beckhoff Automation",
    namespace_uris=("urn:BeckhoffAutomation:Ua:PLC1",),
    sector="building automation",
)

WAGO = Manufacturer(
    name="Wago",
    uri_prefix="urn:wago:pfc",
    product_uri="urn:wago:pfc:controller",
    subject_organization="WAGO Kontakttechnik",
    namespace_uris=("http://wago.com/UA/Controller",),
    sector="process automation",
)

AUTOMATAWERK = Manufacturer(
    name="AutomataWerk",
    uri_prefix="urn:automatawerk:ics",
    product_uri="urn:automatawerk:ics:gateway",
    subject_organization="AutomataWerk Industriesysteme GmbH",
    namespace_uris=("http://automatawerk-industrie.de/UA/Energy",),
    sector="energy technology and parking guidance",
)

CONTROLCORP = Manufacturer(
    name="ControlCorp",
    uri_prefix="urn:controlcorp:cx",
    product_uri="urn:controlcorp:cx:plc",
    subject_organization="ControlCorp Ltd",
    namespace_uris=("http://controlcorp-automation.io/UA/CX",),
    sector="factory automation",
)

OPC_FOUNDATION = Manufacturer(
    name="OPC Foundation",
    uri_prefix="urn:opcfoundation:ua:lds",
    product_uri="urn:opcfoundation:ua:lds",
    subject_organization="OPC Foundation",
    namespace_uris=(),
    sector="discovery",
)

OTHER = Manufacturer(
    name="other",
    uri_prefix="urn:generic:ua-server",
    product_uri="urn:generic:ua-server:device",
    subject_organization="Generic Automation",
    namespace_uris=("http://generic-automation.net/UA/Device",),
    sector="mixed",
)

MANUFACTURERS: tuple[Manufacturer, ...] = (
    BACHMANN,
    BECKHOFF,
    WAGO,
    AUTOMATAWERK,
    CONTROLCORP,
    OPC_FOUNDATION,
    OTHER,
)

_BY_NAME = {m.name: m for m in MANUFACTURERS}


def manufacturer_by_name(name: str) -> Manufacturer:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown manufacturer: {name!r}") from None


def classify_application_uri(application_uri: str | None) -> str:
    """The paper's manual ApplicationURI clustering, §4.

    Maps a scanned ApplicationURI back to a manufacturer name; unknown
    prefixes land in "other" like the paper's long tail.
    """
    if not application_uri:
        return "other"
    for manufacturer in MANUFACTURERS:
        if application_uri.startswith(manufacturer.uri_prefix):
            return manufacturer.name
    return "other"
