"""``repro pack``: export a sealed, DOI-ready study bundle."""

from __future__ import annotations

from repro.cli.options import (
    add_executor,
    add_store,
    executor_from_args,
    require_catalog,
)


def register(commands) -> None:
    pack = commands.add_parser(
        "pack",
        help=(
            "export one stored study as a self-verifying bundle "
            "(analysis JSON, tables, environment, reproduce script, "
            "sealed sha256 manifest)"
        ),
    )
    pack.add_argument("key", help="store key of the study to export")
    pack.add_argument(
        "--out",
        metavar="DIR",
        required=True,
        help="bundle output directory (created if missing)",
    )
    pack.add_argument(
        "--verify",
        action="store_true",
        help=(
            "verify an existing bundle at --out instead of writing "
            "one (re-checks the manifest seal and every artifact hash)"
        ),
    )
    add_executor(pack)
    add_store(pack)
    pack.set_defaults(handler=cmd_pack)


def cmd_pack(args) -> int:
    from repro.reporting.pack import (
        PackIntegrityError,
        verify_pack,
        write_pack,
    )

    if args.verify:
        try:
            manifest = verify_pack(args.out)
        except PackIntegrityError as exc:
            raise SystemExit(f"repro: pack: {exc}")
        print(
            f"pack OK: study {manifest.get('study_key', '')[:12]} — "
            f"{len(manifest.get('artifacts', {}))} artifacts verified"
        )
        print(f"manifest digest: {manifest.get('manifest_digest')}")
        return 0

    catalog = require_catalog(args, "pack exports a stored study")
    executor, workers = executor_from_args(args)
    try:
        manifest = catalog.describe(args.key)  # fail before writing
    except KeyError as exc:
        raise SystemExit(f"repro: error: {exc.args[0]}")
    manifest = write_pack(
        catalog, args.key, args.out, executor=executor, workers=workers
    )
    artifacts = manifest["artifacts"]
    print(f"packed {len(artifacts)} artifacts to {args.out}")
    skipped = manifest.get("skipped_experiments")
    if skipped:
        print(
            "not regenerable for this study (reduced population): "
            + ", ".join(skipped)
        )
    print(f"manifest digest: {manifest['manifest_digest']}")
    return 0
