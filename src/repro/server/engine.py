"""The OPC UA server engine and per-connection state machine.

``UaServer`` holds configuration and shared state (address space,
sessions); ``ServerConnection`` is instantiated per TCP connection and
transforms request bytes into response bytes synchronously — exactly
the shape the network simulator needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.secure.channel import SecureChannelError, ServerSecureChannel
from repro.secure.negotiation import sign_nonce_proof, verify_nonce_proof
from repro.secure.policies import POLICY_NONE, SecurityPolicy, policy_by_uri
from repro.server.access import Role
from repro.server.addressspace import AddressSpace
from repro.server.auth import AuthenticationError, Authenticator
from repro.server.endpoints import EndpointConfig, build_endpoint_descriptions
from repro.server.nodes import MethodNode, VariableNode
from repro.server.service_router import handler_for, requires_session
from repro.server.session import Session, SessionManager
from repro.transport.connection import FrameReader, encode_frame
from repro.transport.messages import (
    AcknowledgeMessage,
    ErrorMessage,
    HelloMessage,
    MessageType,
    TransportError,
)
from repro.uabin.builtin import read_string
from repro.uabin.enums import (
    ApplicationType,
    AttributeId,
    BrowseDirection,
    MessageSecurityMode,
    UserTokenType,
)
from repro.uabin.nodeid import ExpandedNodeId
from repro.uabin.registry import decode_extension_object
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.structs import DecodingError, ResponseHeader
from repro.uabin.types_attribute import ReadResponse, WriteResponse
from repro.uabin.types_channel import (
    ChannelSecurityToken,
    OpenSecureChannelResponse,
)
from repro.uabin.types_common import ApplicationDescription, SignatureData
from repro.uabin.types_discovery import (
    FindServersResponse,
    GetEndpointsResponse,
)
from repro.uabin.types_method import CallMethodResult, CallResponse, ServiceFault
from repro.uabin.types_session import (
    ActivateSessionResponse,
    CloseSessionResponse,
    CreateSessionResponse,
)
from repro.uabin.types_view import (
    BrowseResponse,
    BrowseResult,
    ReferenceDescription,
)
from repro.uabin.variant import DataValue, Variant, VariantType
from repro.util.binary import BinaryReader
from repro.x509.certificate import Certificate


@dataclass
class ServerBehavior:
    """Misbehaviour knobs the deployment generator uses.

    * ``reject_untrusted_client_certs`` models the strict servers that
      abort secure-channel establishment when presented with the
      scanner's self-signed certificate (80 hosts in Table 2).
    * ``faulty_session_config`` models servers that advertise
      anonymous access but reject every session activation due to a
      faulty or incomplete endpoint configuration (the anonymous hosts
      counted under "Authentication" rejections in Table 2).
    * ``fault_data_services`` models honeypot-like responders: the
      session dance completes, but every session-bound service call
      (Read, Browse, Write, Call, …) faults — the host advertises
      everything and serves nothing.
    """

    reject_untrusted_client_certs: bool = False
    faulty_session_config: bool = False
    fault_data_services: bool = False


@dataclass
class ServerConfig:
    """Everything that defines one simulated OPC UA deployment."""

    application_uri: str
    application_name: str
    endpoint_url: str
    product_uri: str | None = None
    application_type: ApplicationType = ApplicationType.SERVER
    certificate: Certificate | None = None
    private_key: object = None
    endpoint_configs: list[EndpointConfig] = field(
        default_factory=lambda: [
            EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE)
        ]
    )
    token_types: list[UserTokenType] = field(
        default_factory=lambda: [UserTokenType.ANONYMOUS]
    )
    authenticator: Authenticator | None = None
    address_space: AddressSpace | None = None
    behavior: ServerBehavior = field(default_factory=ServerBehavior)
    software_version: str = "1.0.0"
    # Discovery servers announce endpoints hosted elsewhere.
    announced_endpoints: list = field(default_factory=list)

    def __post_init__(self):
        if self.authenticator is None:
            self.authenticator = Authenticator(
                allowed_token_types=set(self.token_types)
            )
        if self.address_space is None:
            self.address_space = AddressSpace()
        self.address_space.set_software_version(self.software_version)

    @property
    def is_discovery_server(self) -> bool:
        return self.application_type == ApplicationType.DISCOVERY_SERVER

    def supports(self, mode: MessageSecurityMode, policy: SecurityPolicy) -> bool:
        return any(
            c.security_mode == mode and c.security_policy is policy
            for c in self.endpoint_configs
        )

    def policies_offered(self) -> set[SecurityPolicy]:
        return {c.security_policy for c in self.endpoint_configs}


class UaServer:
    """One simulated OPC UA server instance."""

    def __init__(self, config: ServerConfig, rng: random.Random):
        self.config = config
        self._rng = rng
        self.sessions = SessionManager(rng)
        self._next_channel_id = 1
        # Discovery servers: server-uri -> RegisteredServer announcements.
        self.registered_servers: dict[str, object] = {}

    # --- connection factory ---------------------------------------------------

    def new_connection(self) -> "ServerConnection":
        return ServerConnection(self)

    def reseed(self, rng: random.Random) -> None:
        """Re-key per-connection randomness (nonces, session tokens).

        The study timeline calls this when assembling each sweep's
        network, making every sweep's server responses a pure function
        of the sweep index rather than of how many connections earlier
        sweeps happened to open — the property that lets process-pool
        scan workers (whose state changes never propagate back) stay
        bit-identical to serial runs.
        """
        self._rng = rng
        self.sessions = SessionManager(rng)
        self._next_channel_id = 1

    def allocate_channel_id(self) -> int:
        channel_id = self._next_channel_id
        self._next_channel_id += 1
        return channel_id

    # --- endpoint helpers ------------------------------------------------------

    def endpoint_descriptions(self):
        if self.config.announced_endpoints:
            return list(self.config.announced_endpoints)
        return build_endpoint_descriptions(
            endpoint_url=self.config.endpoint_url,
            application_uri=self.config.application_uri,
            product_uri=self.config.product_uri,
            application_name=self.config.application_name,
            application_type=self.config.application_type,
            endpoint_configs=self.config.endpoint_configs,
            token_types=self.config.token_types,
            certificate_der=(
                self.config.certificate.raw_der if self.config.certificate else None
            ),
        )

    # --- service handlers -------------------------------------------------------

    def handle_get_endpoints(self, session, request, channel):
        return GetEndpointsResponse(
            response_header=self._ok_header(request),
            endpoints=self.endpoint_descriptions(),
        )

    def handle_find_servers(self, session, request, channel):
        """FindServers: our own description first, then announced ones.

        The self-description is what lets the scanner attribute the
        responding application (ApplicationURI clustering, paper §4)
        and recognize discovery servers by their ApplicationType.
        """
        from repro.uabin.builtin import LocalizedText

        own = ApplicationDescription(
            application_uri=self.config.application_uri,
            product_uri=self.config.product_uri,
            application_name=LocalizedText(self.config.application_name),
            application_type=self.config.application_type,
            discovery_urls=[self.config.endpoint_url],
        )
        unique = [own]
        seen = {own.application_uri}
        for endpoint in self.endpoint_descriptions():
            description = endpoint.server
            if description.application_uri not in seen:
                seen.add(description.application_uri)
                unique.append(description)
        for registered in self.registered_servers.values():
            if registered.server_uri in seen:
                continue
            seen.add(registered.server_uri)
            unique.append(
                ApplicationDescription(
                    application_uri=registered.server_uri,
                    product_uri=registered.product_uri,
                    application_name=(
                        registered.server_names[0]
                        if registered.server_names
                        else LocalizedText(registered.server_uri)
                    ),
                    application_type=registered.server_type,
                    discovery_urls=list(registered.discovery_urls or []),
                )
            )
        return FindServersResponse(
            response_header=self._ok_header(request), servers=unique
        )

    def handle_create_session(self, session, request, channel):
        if channel.policy is not POLICY_NONE:
            # The application certificate in the request must be the
            # one that opened the channel (OPC 10000-4 §5.6.2): a
            # mismatch means the session would not be bound to the
            # keys that protect it.
            channel_cert = channel.client_certificate
            if channel_cert is not None and request.client_certificate != (
                channel_cert.raw_der
            ):
                raise _Fault(StatusCodes.BadCertificateInvalid)
        new_session = self.sessions.create(
            name=request.session_name or "",
            timeout_ms=request.requested_session_timeout,
            client_nonce=request.client_nonce,
            security_policy_uri=channel.policy.uri,
            security_mode=int(channel.mode),
        )
        server_signature = SignatureData()
        if channel.policy is not POLICY_NONE and request.client_certificate:
            signed = request.client_certificate + (request.client_nonce or b"")
            server_signature = sign_nonce_proof(
                channel.policy, self.config.private_key, signed, self._rng
            )
        return CreateSessionResponse(
            response_header=self._ok_header(request),
            session_id=new_session.session_id,
            authentication_token=new_session.authentication_token,
            revised_session_timeout=new_session.timeout_ms,
            server_nonce=new_session.server_nonce,
            server_certificate=(
                self.config.certificate.raw_der if self.config.certificate else None
            ),
            server_endpoints=self.endpoint_descriptions(),
            server_signature=server_signature,
        )

    def handle_activate_session(self, session, request, channel):
        target = self.sessions.lookup(request.request_header.authentication_token)
        if target is None:
            raise _Fault(StatusCodes.BadSessionIdInvalid)
        if (
            target.security_policy_uri != channel.policy.uri
            or target.security_mode != int(channel.mode)
        ):
            # Activation must arrive over a channel with the same
            # security the session was created under.
            raise _Fault(StatusCodes.BadSecurityChecksFailed)
        if self.config.behavior.faulty_session_config:
            raise _Fault(StatusCodes.BadIdentityTokenRejected)
        if channel.policy is not POLICY_NONE:
            self._verify_client_signature(request, target, channel)
        try:
            token = decode_extension_object(request.user_identity_token)
        except DecodingError as exc:
            raise _Fault(StatusCodes.BadIdentityTokenInvalid) from exc
        self._check_endpoint_token_override(token, channel)
        try:
            user = self.config.authenticator.authenticate(token)
        except AuthenticationError as exc:
            raise _Fault(exc.status) from exc
        self.sessions.activate(target, user)
        return ActivateSessionResponse(
            response_header=self._ok_header(request),
            server_nonce=target.server_nonce,
            results=[StatusCodes.Good],
        )

    def _check_endpoint_token_override(self, token, channel) -> None:
        """Enforce per-endpoint token restrictions for the active channel."""
        from repro.uabin.types_session import (
            AnonymousIdentityToken,
            IssuedIdentityToken,
            UserNameIdentityToken,
            X509IdentityToken,
        )

        token_type = {
            type(None): UserTokenType.ANONYMOUS,
            AnonymousIdentityToken: UserTokenType.ANONYMOUS,
            UserNameIdentityToken: UserTokenType.USERNAME,
            X509IdentityToken: UserTokenType.CERTIFICATE,
            IssuedIdentityToken: UserTokenType.ISSUED_TOKEN,
        }.get(type(token))
        if token_type is None:
            return
        for config in self.config.endpoint_configs:
            if (
                config.security_mode == channel.mode
                and config.security_policy is channel.policy
                and config.token_types is not None
                and token_type not in config.token_types
            ):
                raise _Fault(StatusCodes.BadIdentityTokenRejected)

    def _verify_client_signature(self, request, session: Session, channel) -> None:
        client_cert = channel.client_certificate
        if client_cert is None:
            raise _Fault(StatusCodes.BadSecurityChecksFailed)
        signed = (
            (self.config.certificate.raw_der if self.config.certificate else b"")
            + session.server_nonce
        )
        if not verify_nonce_proof(
            channel.policy, client_cert, signed, request.client_signature
        ):
            raise _Fault(StatusCodes.BadApplicationSignatureInvalid)

    def handle_close_session(self, session, request, channel):
        target = self.sessions.lookup(request.request_header.authentication_token)
        if target is not None:
            self.sessions.close(target)
        return CloseSessionResponse(response_header=self._ok_header(request))

    def handle_browse(self, session, request, channel):
        results = []
        for description in request.nodes_to_browse or []:
            results.append(self._browse_one(description))
        return BrowseResponse(
            response_header=self._ok_header(request), results=results
        )

    def handle_browse_next(self, session, request, channel):
        # All browse results are returned in one batch, so continuation
        # points never exist; answer each with BadContinuationPointInvalid.
        results = [
            BrowseResult(status_code=StatusCode(0x804A0000))
            for _ in request.continuation_points or []
        ]
        from repro.uabin.types_view import BrowseNextResponse

        return BrowseNextResponse(
            response_header=self._ok_header(request), results=results
        )

    def _browse_one(self, description) -> BrowseResult:
        space = self.config.address_space
        node = space.get_or_none(description.node_id)
        if node is None:
            return BrowseResult(status_code=StatusCodes.BadNodeIdUnknown)
        references = []
        for reference in node.references:
            if description.browse_direction == BrowseDirection.FORWARD and (
                not reference.is_forward
            ):
                continue
            if description.browse_direction == BrowseDirection.INVERSE and (
                reference.is_forward
            ):
                continue
            target = space.get_or_none(reference.target)
            if target is None:
                continue
            references.append(
                ReferenceDescription(
                    reference_type_id=reference.reference_type,
                    is_forward=reference.is_forward,
                    node_id=ExpandedNodeId(target.node_id),
                    browse_name=target.browse_name,
                    display_name=target.display_name,
                    node_class=target.node_class,
                    type_definition=ExpandedNodeId(target.type_definition),
                )
            )
        return BrowseResult(status_code=StatusCodes.Good, references=references)

    def handle_read(self, session, request, channel):
        role = session.role
        results = [
            self._read_attribute(node_read, role)
            for node_read in request.nodes_to_read or []
        ]
        return ReadResponse(
            response_header=self._ok_header(request), results=results
        )

    def _read_attribute(self, node_read, role: Role) -> DataValue:
        space = self.config.address_space
        node = space.get_or_none(node_read.node_id)
        if node is None:
            return DataValue(status=StatusCodes.BadNodeIdUnknown)
        attribute = node_read.attribute_id
        if attribute == AttributeId.VALUE:
            if not isinstance(node, VariableNode):
                return DataValue(status=StatusCodes.BadAttributeIdInvalid)
            if not node.permissions.allows_read(role):
                return DataValue(status=StatusCodes.BadUserAccessDenied)
            return DataValue(value=node.value, status=StatusCodes.Good)
        if attribute == AttributeId.NODE_CLASS:
            return DataValue(
                value=Variant(int(node.node_class), VariantType.INT32),
                status=StatusCodes.Good,
            )
        if attribute == AttributeId.BROWSE_NAME:
            return DataValue(
                value=Variant(node.browse_name, VariantType.QUALIFIEDNAME),
                status=StatusCodes.Good,
            )
        if attribute == AttributeId.DISPLAY_NAME:
            return DataValue(
                value=Variant(node.display_name, VariantType.LOCALIZEDTEXT),
                status=StatusCodes.Good,
            )
        if attribute == AttributeId.ACCESS_LEVEL:
            if not isinstance(node, VariableNode):
                return DataValue(status=StatusCodes.BadAttributeIdInvalid)
            return DataValue(
                value=Variant(node.access_level(), VariantType.BYTE),
                status=StatusCodes.Good,
            )
        if attribute == AttributeId.USER_ACCESS_LEVEL:
            if not isinstance(node, VariableNode):
                return DataValue(status=StatusCodes.BadAttributeIdInvalid)
            return DataValue(
                value=Variant(node.user_access_level(role), VariantType.BYTE),
                status=StatusCodes.Good,
            )
        if attribute == AttributeId.EXECUTABLE:
            if not isinstance(node, MethodNode):
                return DataValue(status=StatusCodes.BadAttributeIdInvalid)
            return DataValue(
                value=Variant(node.executable(), VariantType.BOOLEAN),
                status=StatusCodes.Good,
            )
        if attribute == AttributeId.USER_EXECUTABLE:
            if not isinstance(node, MethodNode):
                return DataValue(status=StatusCodes.BadAttributeIdInvalid)
            return DataValue(
                value=Variant(node.user_executable(role), VariantType.BOOLEAN),
                status=StatusCodes.Good,
            )
        return DataValue(status=StatusCodes.BadAttributeIdInvalid)

    def handle_write(self, session, request, channel):
        role = session.role
        results = []
        for write in request.nodes_to_write or []:
            results.append(self._write_attribute(write, role))
        return WriteResponse(
            response_header=self._ok_header(request), results=results
        )

    def _write_attribute(self, write, role: Role) -> StatusCode:
        space = self.config.address_space
        node = space.get_or_none(write.node_id)
        if node is None:
            return StatusCodes.BadNodeIdUnknown
        if write.attribute_id != AttributeId.VALUE:
            return StatusCodes.BadNotWritable
        if not isinstance(node, VariableNode):
            return StatusCodes.BadNotWritable
        if not node.permissions.allows_write(role):
            return StatusCodes.BadUserAccessDenied
        if write.value.value is not None:
            node.value = write.value.value
        return StatusCodes.Good

    def handle_call(self, session, request, channel):
        role = session.role
        results = []
        for call in request.methods_to_call or []:
            results.append(self._call_method(call, role, session))
        return CallResponse(
            response_header=self._ok_header(request), results=results
        )

    def _call_method(self, call, role: Role, session) -> CallMethodResult:
        space = self.config.address_space
        node = space.get_or_none(call.method_id)
        if node is None or not isinstance(node, MethodNode):
            return CallMethodResult(status_code=StatusCodes.BadMethodInvalid)
        if not node.permissions.allows_execute(role):
            return CallMethodResult(status_code=StatusCodes.BadUserAccessDenied)
        outputs = []
        if callable(node.handler):
            outputs = node.handler(session, call.input_arguments or [])
        return CallMethodResult(
            status_code=StatusCodes.Good, output_arguments=outputs
        )

    def handle_translate_browse_paths(self, session, request, channel):
        from repro.uabin.types_query import (
            BrowsePathResult,
            BrowsePathTarget,
            TranslateBrowsePathsResponse,
        )

        results = []
        for path in request.browse_paths or []:
            results.append(self._translate_one(path))
        return TranslateBrowsePathsResponse(
            response_header=self._ok_header(request), results=results
        )

    def _translate_one(self, path):
        from repro.uabin.nodeid import ExpandedNodeId
        from repro.uabin.types_query import BrowsePathResult, BrowsePathTarget

        space = self.config.address_space
        current = space.get_or_none(path.starting_node)
        if current is None:
            return BrowsePathResult(status_code=StatusCodes.BadNodeIdUnknown)
        elements = (path.relative_path.elements or []) if path.relative_path else []
        if not elements:
            return BrowsePathResult(status_code=StatusCodes.BadNothingToDo)
        for element in elements:
            target_name = element.target_name
            next_node = None
            for reference in current.references:
                if reference.is_forward == element.is_inverse:
                    continue
                candidate = space.get_or_none(reference.target)
                if candidate is None:
                    continue
                if (
                    candidate.browse_name.name == target_name.name
                    and candidate.browse_name.namespace_index
                    == target_name.namespace_index
                ):
                    next_node = candidate
                    break
            if next_node is None:
                return BrowsePathResult(status_code=StatusCodes.BadNotFound)
            current = next_node
        return BrowsePathResult(
            status_code=StatusCodes.Good,
            targets=[BrowsePathTarget(target_id=ExpandedNodeId(current.node_id))],
        )

    def handle_register_server(self, session, request, channel):
        """RegisterServer: only discovery servers accept registrations."""
        from repro.uabin.types_query import RegisterServerResponse

        if not self.config.is_discovery_server:
            raise _Fault(StatusCodes.BadServiceUnsupported)
        registered = request.server
        if not registered.server_uri or not registered.discovery_urls:
            raise _Fault(StatusCodes.BadInvalidArgument)
        if registered.is_online:
            self.registered_servers[registered.server_uri] = registered
        else:
            self.registered_servers.pop(registered.server_uri, None)
        return RegisterServerResponse(response_header=self._ok_header(request))

    # --- helpers ------------------------------------------------------------

    @staticmethod
    def _ok_header(request) -> ResponseHeader:
        return ResponseHeader(
            request_handle=request.request_header.request_handle,
            service_result=StatusCodes.Good,
        )


class _Fault(Exception):
    """Internal: converted to a ServiceFault response."""

    def __init__(self, status: StatusCode):
        super().__init__(status.name)
        self.status = status


class ServerConnection:
    """Per-connection byte-level state machine."""

    def __init__(self, server: UaServer):
        self._server = server
        self._reader = FrameReader()
        self._hello_done = False
        self._channel: ServerSecureChannel | None = None
        self._discovery_only = False
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def receive(self, data: bytes) -> bytes:
        """Feed request bytes; returns response bytes (possibly empty)."""
        if self._closed:
            return b""
        self._reader.feed(data)
        out = bytearray()
        try:
            for header, body in self._reader.drain_frames():
                out.extend(self._handle_frame(header, body))
                if self._closed:
                    break
        except TransportError as exc:
            out.extend(self._error_frame(StatusCodes.BadTcpMessageTypeInvalid, str(exc)))
            self._closed = True
        return bytes(out)

    def _handle_frame(self, header, body: bytes) -> bytes:
        if header.message_type == MessageType.HELLO:
            return self._handle_hello(body)
        if not self._hello_done:
            self._closed = True
            return self._error_frame(
                StatusCodes.BadTcpMessageTypeInvalid, "expected HEL first"
            )
        if header.message_type == MessageType.OPEN_CHANNEL:
            return self._handle_open(body)
        if header.message_type == MessageType.MESSAGE:
            return self._handle_message(body)
        if header.message_type == MessageType.CLOSE_CHANNEL:
            self._closed = True
            return b""
        self._closed = True
        return self._error_frame(
            StatusCodes.BadTcpMessageTypeInvalid,
            f"unexpected {header.message_type.value}",
        )

    def _handle_hello(self, body: bytes) -> bytes:
        try:
            HelloMessage.decode_body(body)
        except Exception:
            self._closed = True
            return self._error_frame(
                StatusCodes.BadTcpMessageTypeInvalid, "malformed HEL"
            )
        self._hello_done = True
        return encode_frame(
            MessageType.ACKNOWLEDGE, "F", AcknowledgeMessage().encode_body()
        )

    def _handle_open(self, body: bytes) -> bytes:
        # Peek the security policy URI from the asymmetric header.
        reader = BinaryReader(body)
        reader.read_uint32()
        try:
            policy = policy_by_uri(read_string(reader))
        except KeyError as exc:
            self._closed = True
            return self._error_frame(StatusCodes.BadSecurityPolicyRejected, str(exc))

        config = self._server.config
        # Servers must always accept a None-policy channel for the
        # discovery services (GetEndpoints/FindServers), even when no
        # None endpoint is offered; sessions on such a channel are
        # rejected in _dispatch.  This mirrors real stacks and is what
        # let the paper retrieve endpoint lists from *every* server.
        discovery_only = (
            policy is POLICY_NONE and policy not in config.policies_offered()
        )
        if policy is not POLICY_NONE and policy not in config.policies_offered():
            self._closed = True
            return self._error_frame(
                StatusCodes.BadSecurityPolicyRejected,
                f"policy {policy.name} not offered",
            )
        if (
            policy is not POLICY_NONE
            and config.behavior.reject_untrusted_client_certs
        ):
            # Strict server: reject the scanner's self-signed certificate.
            self._closed = True
            return self._error_frame(
                StatusCodes.BadSecurityChecksFailed,
                "client certificate not trusted",
            )

        provisional_mode = (
            MessageSecurityMode.NONE
            if policy is POLICY_NONE
            else MessageSecurityMode.SIGN
        )
        channel = ServerSecureChannel(
            policy,
            provisional_mode,
            self._server._rng,
            channel_id=self._server.allocate_channel_id(),
            server_certificate=config.certificate,
            server_private_key=config.private_key,
        )
        try:
            request = channel.handle_open_request(body)
        except SecureChannelError as exc:
            self._closed = True
            return self._error_frame(StatusCodes.BadSecurityChecksFailed, str(exc))

        requested_mode = request.security_mode
        if not discovery_only and not config.supports(requested_mode, policy):
            self._closed = True
            return self._error_frame(
                StatusCodes.BadSecurityModeRejected,
                f"mode {requested_mode.name} not offered with {policy.name}",
            )
        try:
            channel.adopt_mode(requested_mode)
        except SecureChannelError as exc:
            self._closed = True
            return self._error_frame(StatusCodes.BadSecurityModeRejected, str(exc))

        response = OpenSecureChannelResponse(
            response_header=ResponseHeader(
                request_handle=request.request_header.request_handle,
                service_result=StatusCodes.Good,
            ),
            security_token=ChannelSecurityToken(
                channel_id=channel.channel_id,
                token_id=1,
                revised_lifetime=request.requested_lifetime,
            ),
        )
        frame = channel.build_open_response(response)
        self._channel = channel
        self._discovery_only = discovery_only
        return frame

    def _handle_message(self, body: bytes) -> bytes:
        if self._channel is None:
            self._closed = True
            return self._error_frame(
                StatusCodes.BadTcpSecureChannelUnknown, "no secure channel"
            )
        try:
            request, request_id = self._channel.decode_message(body)
        except SecureChannelError as exc:
            self._closed = True
            return self._error_frame(StatusCodes.BadSecurityChecksFailed, str(exc))
        response = self._dispatch(request)
        return self._channel.encode_message(response, request_id)

    def _dispatch(self, request):
        server = self._server
        handler = handler_for(server, request)
        if handler is None:
            return _fault_response(request, StatusCodes.BadServiceUnsupported)
        from repro.uabin.types_session import CreateSessionRequest

        if isinstance(request, CreateSessionRequest):
            if server.config.is_discovery_server:
                # A bare LDS implements only the discovery service set.
                return _fault_response(request, StatusCodes.BadServiceUnsupported)
            if self._discovery_only:
                return _fault_response(
                    request, StatusCodes.BadSecurityModeInsufficient
                )
        session = None
        if requires_session(request):
            session = server.sessions.lookup(
                request.request_header.authentication_token
            )
            if session is None:
                return _fault_response(request, StatusCodes.BadSessionIdInvalid)
            if not session.activated:
                return _fault_response(request, StatusCodes.BadSessionNotActivated)
            if server.config.behavior.fault_data_services:
                # Honeypot knob: sessions complete, data services never
                # do — CloseSession is sessionless here, so the client
                # can still part cleanly.
                return _fault_response(
                    request, StatusCodes.BadResourceUnavailable
                )
        try:
            return handler(session, request, self._channel)
        except _Fault as fault:
            return _fault_response(request, fault.status)
        except AuthenticationError as exc:
            return _fault_response(request, exc.status)

    def _error_frame(self, status: StatusCode, reason: str) -> bytes:
        message = ErrorMessage(error_code=status.value, reason=reason)
        return encode_frame(MessageType.ERROR, "F", message.encode_body())


def _fault_response(request, status: StatusCode) -> ServiceFault:
    return ServiceFault(
        response_header=ResponseHeader(
            request_handle=request.request_header.request_handle,
            service_result=status,
        )
    )
