"""Regenerate the committed golden digests (serial reference runs).

Usage::

    PYTHONPATH=src python tests/golden/regenerate.py

Writes ``tiny_study.digest.json`` (the None-only population),
``negotiated.digest.json`` (the secure-endpoint population whose
records carry the ``negotiated_*`` session fields), and
``anomalies.digest.json`` (the hostile device-zoo population).

Only run this after an *intentional* determinism change (new record
field, RNG re-keying, population change) and commit the refreshed
digests together with the change that explains it.  A diff here
without an explanation is exactly the regression the golden tests
exist to catch.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DIGEST_PATH = Path(__file__).resolve().parent / "tiny_study.digest.json"
NEGOTIATED_PATH = Path(__file__).resolve().parent / "negotiated.digest.json"
ANOMALIES_PATH = Path(__file__).resolve().parent / "anomalies.digest.json"

for entry in (str(REPO_ROOT / "src"),):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import os  # noqa: E402

os.environ.setdefault("REPRO_KEYCACHE", str(REPO_ROOT / ".keycache"))

from repro.core.golden import (  # noqa: E402
    TINY_BATCH_SIZE,
    TINY_SECURE_ROW_IDS,
    TINY_SPEC_ROWS,
    run_tiny_hostile_study,
    run_tiny_secure_study,
    run_tiny_study,
    study_digest,
    study_digests,
    tiny_hostile_spec,
    tiny_secure_spec,
    tiny_spec,
)


def main() -> int:
    result = run_tiny_study()
    payload = {
        "_comment": (
            "Golden digests of the tiny-spec serial study. Regenerate "
            "with: PYTHONPATH=src python tests/golden/regenerate.py"
        ),
        "seed": result.config.seed,
        "spec_rows": TINY_SPEC_ROWS,
        "servers": tiny_spec().total_servers,
        "probe_batch_size": TINY_BATCH_SIZE,
        "digest": study_digest(result),
        "per_sweep": study_digests(result),
    }
    DIGEST_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {DIGEST_PATH}")
    print(f"study digest: {payload['digest']}")

    secure = run_tiny_secure_study()
    secure_payload = {
        "_comment": (
            "Golden digests of the negotiated-security serial study "
            "(secure-endpoint rows only). Regenerate with: "
            "PYTHONPATH=src python tests/golden/regenerate.py"
        ),
        "seed": secure.config.seed,
        "spec_rows": list(TINY_SECURE_ROW_IDS),
        "servers": tiny_secure_spec().total_servers,
        "probe_batch_size": TINY_BATCH_SIZE,
        "digest": study_digest(secure),
        "per_sweep": study_digests(secure),
    }
    NEGOTIATED_PATH.write_text(json.dumps(secure_payload, indent=2) + "\n")
    print(f"wrote {NEGOTIATED_PATH}")
    print(f"negotiated study digest: {secure_payload['digest']}")

    hostile = run_tiny_hostile_study()
    hostile_payload = {
        "_comment": (
            "Golden digests of the hostile device-zoo serial study "
            "(one spec row per personality plus controls). Regenerate "
            "with: PYTHONPATH=src python tests/golden/regenerate.py"
        ),
        "seed": hostile.config.seed,
        "spec_rows": [row.row_id for row in tiny_hostile_spec().rows],
        "servers": tiny_hostile_spec().total_servers,
        "probe_batch_size": TINY_BATCH_SIZE,
        "digest": study_digest(hostile),
        "per_sweep": study_digests(hostile),
    }
    ANOMALIES_PATH.write_text(json.dumps(hostile_payload, indent=2) + "\n")
    print(f"wrote {ANOMALIES_PATH}")
    print(f"hostile study digest: {hostile_payload['digest']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
