"""Content-addressed, versioned on-disk store for study results.

Running the full eight-sweep study costs minutes; every one of the
paper's analyses consumes nothing but the resulting snapshot sequence.
The store decouples the two: ``Study.run(store=...)`` writes the
snapshots once, and any later invocation — another experiment, the
benchmark suite, ``repro analyze``, a CI job — loads them instead of
re-scanning.

Entries are *content-addressed*: the key is a SHA-256 digest over

* the result-affecting :class:`~repro.core.config.StudyConfig` fields
  (``executor``/``workers``/``probe_batch_size`` are excluded — they
  change wall-clock time, never snapshot bytes, so a study scanned
  with the process backend serves serial callers and vice versa);
* every row of the :class:`~repro.deployments.spec.PopulationSpec`;
* :data:`SCHEMA_VERSION`, bumped whenever the record schema or the
  scan semantics change — old entries then simply stop matching
  instead of being misread.

Each entry persists its golden digests (per-sweep and whole-study,
the same SHA-256s ``tests/golden`` pins) in ``meta.json``, and
:meth:`StudyStore.load` recomputes them from the decoded snapshots —
a corrupted, hand-edited, or stale entry can never silently poison an
analysis; it raises :class:`StoreIntegrityError` instead.

Layout::

    <root>/<key>/meta.json           # config, spec summary, digests
    <root>/<key>/snapshots.jsonl.gz  # dataset/io.py JSONL, gzipped

The store also holds **capture corpora** (recorded live scans — see
:mod:`repro.transport.capture`), content-addressed by the SHA-256 of
their canonical corpus bytes::

    <root>/corpora/<key>/corpus.jsonl.gz
    <root>/corpora/<key>/meta.json

Corpus keys never collide with study keys: corpora live under their
own subdirectory, which carries no top-level ``meta.json`` and is
therefore invisible to :meth:`StudyStore.keys`.

**Shard checkpoints** (see :mod:`repro.scanner.shard`) follow the
same pattern one level deeper: a sharded campaign persists each
finished shard under::

    <root>/shards/<study-key>/<index>-of-<count>/snapshots.jsonl.gz
    <root>/shards/<study-key>/<index>-of-<count>/meta.json

with the same write-data-first/publish-meta-last protocol and the
same digest validation on load, so ``--resume`` can trust (and a
corrupted checkpoint can never poison) a restarted campaign.  The
merge step records a ``merge.json`` manifest next to the merged
entry's ``meta.json`` naming every shard digest that went into it.

Every (re-)write in this module is *atomic*: data files land under a
temporary name and are ``os.replace``d into place, and a re-save over
an existing entry retracts the old ``meta.json`` first — at no point
does a live meta describe half-written bytes, so the worst a crash
can leave behind is an incomplete-looking entry that is simply
re-scanned.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Iterator

from repro.core.config import StudyConfig
from repro.core.golden import (
    canonical_json,
    combined_digest,
    snapshot_digest,
    sweep_digests,
)
from repro.dataset.io import (
    DatasetFormatError,
    iter_snapshots,
    write_snapshots,
)
from repro.deployments.spec import PopulationSpec
from repro.scanner.records import MeasurementSnapshot

#: Version of the stored byte format *and* of the scan semantics that
#: produced it.  Bump on any change to the record schema, the snapshot
#: digest definition, or the scan pipeline's output — every existing
#: key then stops matching and studies are transparently re-run.
SCHEMA_VERSION = 1

#: Environment variable naming the default store directory.  Used by
#: :func:`default_store` so CI and benchmarks opt whole process trees
#: into the store without threading a path through every call site.
STORE_ENV = "REPRO_STUDY_STORE"

SNAPSHOT_FILE = "snapshots.jsonl.gz"
META_FILE = "meta.json"
CORPUS_DIR = "corpora"
CORPUS_FILE = "corpus.jsonl.gz"
SHARDS_DIR = "shards"
MERGE_MANIFEST_FILE = "merge.json"

#: StudyConfig fields that never change snapshot bytes (executor
#: choice and task granularity) — excluded from the content key.
_NON_RESULT_FIELDS = frozenset({"executor", "workers", "probe_batch_size"})


class StoreIntegrityError(RuntimeError):
    """A store entry exists but fails digest/shape validation."""


def config_key_fields(config: StudyConfig) -> dict:
    """The config as a dict of result-affecting fields only."""
    return {
        field.name: getattr(config, field.name)
        for field in dataclasses.fields(config)
        if field.name not in _NON_RESULT_FIELDS
    }


def spec_fingerprint(spec: PopulationSpec) -> list[dict]:
    """Every spec row as plain JSON (enums are ints, tuples lists).

    Sparse row fields (``personality``) are pruned when unset, the
    same idiom as the record schema: a well-behaved row fingerprints
    identically whether or not the field exists, so growing the spec
    schema does not invalidate stores of well-behaved studies.
    """
    rows = []
    for row in spec.rows:
        fields = dataclasses.asdict(row)
        if fields["personality"] is None:
            del fields["personality"]
        rows.append(fields)
    return rows


def study_key(config: StudyConfig, spec: PopulationSpec) -> str:
    """Content digest identifying one study's inputs."""
    material = canonical_json(
        {
            "schema": SCHEMA_VERSION,
            "config": config_key_fields(config),
            "spec": spec_fingerprint(spec),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def resolve_store(path: str | Path | None = None) -> "StudyStore | None":
    """Resolve the ambient store: explicit path, else :data:`STORE_ENV`.

    This is the *one* place the environment variable is consulted —
    every consumer (the CLI's ``--store`` flag,
    :func:`~repro.core.study.default_study_result`, the catalog layer)
    funnels through here, so "which store am I using?" always has a
    single answer.  Returns ``None`` when neither names a directory —
    callers then run without persistence, exactly as before the store
    existed.

        >>> import os
        >>> saved = os.environ.pop(STORE_ENV, None)
        >>> resolve_store() is None
        True
        >>> resolve_store("/tmp/some-store").root
        PosixPath('/tmp/some-store')
        >>> os.environ[STORE_ENV] = "/tmp/env-store"
        >>> resolve_store().root
        PosixPath('/tmp/env-store')
        >>> del os.environ[STORE_ENV]
        >>> if saved is not None:
        ...     os.environ[STORE_ENV] = saved
    """
    if path is None:
        path = os.environ.get(STORE_ENV) or None
    if path is None:
        return None
    return StudyStore(path)


def default_store(path: str | Path | None = None) -> "StudyStore | None":
    """Deprecated alias for :func:`resolve_store`.

    Kept as a warning shim for one release so external callers keep
    working; new code should call :func:`resolve_store`.
    """
    import warnings

    warnings.warn(
        "repro.dataset.store.default_store is deprecated; use "
        "resolve_store instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return resolve_store(path)


class StudyStore:
    """A directory of content-addressed study entries.

    A fresh store is empty::

        >>> import tempfile
        >>> store = StudyStore(tempfile.mkdtemp())
        >>> store.keys()
        []
        >>> store.corpus_keys()
        []
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # --- key plumbing ------------------------------------------------------

    def entry_dir(self, key: str) -> Path:
        return self.root / key

    def contains(self, config: StudyConfig, spec: PopulationSpec) -> bool:
        key = study_key(config, spec)
        return (self.entry_dir(key) / META_FILE).exists()

    def keys(self) -> list[str]:
        """Every study-entry key, in sorted order.

        ``iterdir`` order is filesystem-dependent (inode order on
        ext4, name order on APFS); sorting here is what makes
        ``repro runs`` output — and the catalog's registry digest —
        identical on every machine.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / META_FILE).exists()
        )

    def read_meta(self, key: str) -> dict:
        path = self.entry_dir(key) / META_FILE
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"store entry {key}: meta.json is not valid JSON "
                f"({exc}) — delete {path.parent} and re-run the study"
            ) from None

    # --- writing -----------------------------------------------------------

    def _publish(
        self,
        entry: Path,
        snapshots: list[MeasurementSnapshot],
        meta: dict,
    ) -> None:
        """Atomically (re-)write one entry: data first, meta last.

        Re-saving over an existing entry retracts its ``meta.json``
        *before* touching the snapshot file — otherwise a crash
        mid-rewrite leaves a complete-looking entry whose bytes no
        longer match its digests (a ``StoreIntegrityError`` on the
        next load, instead of the rescan an incomplete entry gets).
        The snapshot bytes land under a temporary name (kept on a
        ``.gz`` suffix so compression is unchanged) and are
        ``os.replace``d into place, and the meta file is published the
        same way, so neither file is ever observable half-written.
        """
        entry.mkdir(parents=True, exist_ok=True)
        (entry / META_FILE).unlink(missing_ok=True)
        temp_snapshots = entry / (".tmp." + SNAPSHOT_FILE)
        write_snapshots(temp_snapshots, snapshots)
        os.replace(temp_snapshots, entry / SNAPSHOT_FILE)
        temp_meta = entry / (META_FILE + ".tmp")
        temp_meta.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(temp_meta, entry / META_FILE)

    def save(
        self,
        config: StudyConfig,
        spec: PopulationSpec,
        snapshots: list[MeasurementSnapshot],
    ) -> str:
        """Persist one finished study; returns the entry key.

        The snapshot file is written first and ``meta.json`` last (see
        :meth:`_publish`), so a crashed write never leaves an entry
        that looks complete — ``contains``/``load`` key off the meta
        file.
        """
        key = study_key(config, spec)
        per_sweep = sweep_digests(snapshots)
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "config": {
                field.name: getattr(config, field.name)
                for field in dataclasses.fields(config)
            },
            "spec_rows": len(spec.rows),
            "spec_servers": spec.total_servers,
            "sweeps": len(snapshots),
            "records": sum(len(s.records) for s in snapshots),
            "digest": combined_digest(per_sweep),
            "per_sweep": per_sweep,
        }
        self._publish(self.entry_dir(key), snapshots, meta)
        return key

    # --- reading -----------------------------------------------------------

    def load(
        self, config: StudyConfig, spec: PopulationSpec
    ) -> list[MeasurementSnapshot] | None:
        """Load and validate the entry for ``(config, spec)``.

        ``None`` means "not stored" (including a schema-version
        mismatch, which by construction cannot produce this key).
        Every decoded snapshot is re-hashed against the digests
        recorded at save time; any drift — truncated file, stale
        entry, hand edit, schema skew — raises
        :class:`StoreIntegrityError`.
        """
        key = study_key(config, spec)
        if not (self.entry_dir(key) / META_FILE).exists():
            return None
        return list(self.iter_validated(key))

    def iter_validated(self, key: str) -> Iterator[MeasurementSnapshot]:
        """Stream one entry's snapshots, validating digests as they go.

        The streaming shape means a consumer that only needs the first
        sweeps (or processes sweeps one at a time) pays for exactly
        what it reads — the final whole-study digest check happens on
        exhaustion, when every per-sweep digest has already matched.
        """
        entry = self.entry_dir(key)
        meta = self.read_meta(key)
        yield from self._iter_validated_entry(entry, meta, f"store entry {key}")

    def _iter_validated_entry(
        self, entry: Path, meta: dict, label: str
    ) -> Iterator[MeasurementSnapshot]:
        """Digest-validating snapshot stream shared by entries and shards."""
        if meta.get("schema") != SCHEMA_VERSION:
            raise StoreIntegrityError(
                f"{label} has schema {meta.get('schema')!r}, "
                f"this code expects {SCHEMA_VERSION}"
            )
        expected: dict[str, str] = meta.get("per_sweep", {})
        expected_dates = list(expected)
        seen: dict[str, str] = {}
        path = entry / SNAPSHOT_FILE
        snapshot_iter = iter_snapshots(path)
        while True:
            try:
                snapshot = next(snapshot_iter)
            except StopIteration:
                break
            except DatasetFormatError as exc:
                # Undecodable bytes (a crash mid-write, a truncated
                # gzip stream) are the same integrity failure as a
                # digest mismatch — surface them as one error class so
                # resume logic can treat "corrupt" uniformly.
                raise StoreIntegrityError(
                    f"{label}: snapshot stream unreadable ({exc})"
                ) from None
            position = len(seen)
            if (
                position >= len(expected_dates)
                or snapshot.date != expected_dates[position]
            ):
                raise StoreIntegrityError(
                    f"{label}: unexpected sweep "
                    f"{snapshot.date!r} at position {position} "
                    f"(expected {expected_dates[position:position + 1]})"
                )
            digest = snapshot_digest(snapshot)
            if digest != expected[snapshot.date]:
                raise StoreIntegrityError(
                    f"{label}: sweep {snapshot.date} digest "
                    f"mismatch (stored {expected[snapshot.date][:12]}…, "
                    f"recomputed {digest[:12]}…) — the entry is stale "
                    "or corrupted; delete it and re-run the study"
                )
            seen[snapshot.date] = digest
            yield snapshot
        if len(seen) != len(expected_dates):
            raise StoreIntegrityError(
                f"{label}: file holds {len(seen)} sweeps, "
                f"meta.json declares {len(expected_dates)}"
            )
        if combined_digest(seen) != meta.get("digest"):
            raise StoreIntegrityError(f"{label}: whole-study digest mismatch")

    # --- shard checkpoints -------------------------------------------------

    def shard_dir(self, key: str, index: int, count: int) -> Path:
        return self.root / SHARDS_DIR / key / f"{index:04d}-of-{count:04d}"

    def save_shard(
        self,
        config: StudyConfig,
        spec: PopulationSpec,
        index: int,
        count: int,
        snapshots: list[MeasurementSnapshot],
    ) -> str:
        """Checkpoint one finished shard of a sharded campaign.

        Shards live under ``shards/<study-key>/`` — outside the
        content-addressed namespace :meth:`keys` enumerates — and use
        the same atomic data-first/meta-last publish as whole studies,
        so a kill mid-checkpoint leaves a rescan-able partial, never a
        complete-looking corrupt one.
        """
        key = study_key(config, spec)
        per_sweep = sweep_digests(snapshots)
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "shard_index": index,
            "shard_count": count,
            "sweeps": len(snapshots),
            "records": sum(len(s.records) for s in snapshots),
            "digest": combined_digest(per_sweep),
            "per_sweep": per_sweep,
        }
        self._publish(self.shard_dir(key, index, count), snapshots, meta)
        return key

    def load_shard(
        self,
        config: StudyConfig,
        spec: PopulationSpec,
        index: int,
        count: int,
    ) -> list[MeasurementSnapshot] | None:
        """Load and validate one shard checkpoint; ``None`` if absent.

        Validation is identical to :meth:`load` — every snapshot is
        re-hashed against the digests recorded at checkpoint time, and
        the meta must claim exactly this ``(index, count)`` slot, so a
        checkpoint mis-filed (or copied) across shard geometries can
        never be resumed as the wrong slice.
        """
        key = study_key(config, spec)
        entry = self.shard_dir(key, index, count)
        label = f"shard {index}/{count} of {key}"
        if not (entry / META_FILE).exists():
            return None
        try:
            meta = json.loads((entry / META_FILE).read_text())
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"{label}: meta.json is not valid JSON ({exc}) — "
                f"delete {entry} and re-run the shard"
            ) from None
        if (meta.get("shard_index"), meta.get("shard_count")) != (index, count):
            raise StoreIntegrityError(
                f"{label}: meta claims shard "
                f"{meta.get('shard_index')}/{meta.get('shard_count')}"
            )
        return list(self._iter_validated_entry(entry, meta, label))

    # --- merge manifests ---------------------------------------------------

    def write_merge_manifest(self, key: str, manifest: dict) -> Path:
        """Publish the merge manifest beside a merged entry's meta.

        Extra files in an entry directory are invisible to
        :meth:`load`, so the manifest is pure provenance: which shard
        digests were reassembled into the canonical snapshots (see
        :func:`repro.scanner.shard.merge_study_shards`).
        """
        entry = self.entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        temp = entry / (MERGE_MANIFEST_FILE + ".tmp")
        temp.write_text(json.dumps(manifest, indent=2) + "\n")
        path = entry / MERGE_MANIFEST_FILE
        os.replace(temp, path)
        return path

    def read_merge_manifest(self, key: str) -> dict | None:
        path = self.entry_dir(key) / MERGE_MANIFEST_FILE
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # --- capture corpora ---------------------------------------------------

    def corpus_dir(self, key: str) -> Path:
        return self.root / CORPUS_DIR / key

    def corpus_keys(self) -> list[str]:
        """Every capture-corpus key, in sorted order (see :meth:`keys`)."""
        corpora = self.root / CORPUS_DIR
        if not corpora.is_dir():
            return []
        return sorted(
            entry.name
            for entry in corpora.iterdir()
            if (entry / META_FILE).exists()
        )

    def corpus_path(self, key: str) -> Path:
        return self.corpus_dir(key) / CORPUS_FILE

    def save_corpus(self, corpus) -> str:
        """Persist a capture corpus; returns its content key.

        The key is the corpus digest (SHA-256 over the canonical JSONL
        lines — see
        :meth:`repro.transport.capture.CaptureCorpus.digest`), so
        saving the same recording twice lands on the same entry, and a
        tampered entry can never pass :meth:`load_corpus`.
        """
        from repro.transport.capture import write_corpus

        key = corpus.digest()
        entry = self.corpus_dir(key)
        if (entry / META_FILE).exists():
            # Content-addressed: an existing entry holds these exact
            # bytes already.  Returning early keeps a re-save from
            # rewriting a good recording in place (a crash mid-write
            # would corrupt an entry whose meta marks it complete —
            # and a live recording can never be reproduced).
            return key
        entry.mkdir(parents=True, exist_ok=True)
        # Same protocol as _publish: corpus bytes land under a
        # temporary .gz name, replaced into place before the meta that
        # marks them complete is published.
        temp_corpus = entry / (".tmp." + CORPUS_FILE)
        write_corpus(temp_corpus, corpus)
        os.replace(temp_corpus, entry / CORPUS_FILE)
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "targets": len(corpus.targets),
            "label": corpus.meta.get("label"),
        }
        temp = entry / (META_FILE + ".tmp")
        temp.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(temp, entry / META_FILE)
        return key

    def load_corpus(self, key: str):
        """Load one corpus, re-verifying its content digest.

        Raises :class:`StoreIntegrityError` on digest drift (a stale,
        truncated, or hand-edited entry) and :class:`KeyError` for an
        unknown key.
        """
        from repro.transport.capture import read_corpus

        path = self.corpus_path(key)
        if not path.exists():
            raise KeyError(f"no capture corpus {key!r} under {self.root}")
        corpus = read_corpus(path)
        digest = corpus.digest()
        if digest != key:
            raise StoreIntegrityError(
                f"capture corpus {key}: content digest mismatch "
                f"(recomputed {digest[:12]}…) — the entry is corrupted; "
                "delete it and re-record"
            )
        return corpus
