"""A small, self-contained ASN.1 DER encoder/decoder.

Only the subset of DER needed for X.509 v3 certificates and PKCS#1 key
material is implemented: definite-length TLV, the universal types used
by RFC 5280, and an OID registry.  The design follows the "explicit is
better than implicit" rule: values are plain Python objects tagged with
explicit classes rather than a generic schema compiler.
"""

from repro.asn1.der import (
    Asn1Error,
    BitString,
    ContextTag,
    Null,
    ObjectIdentifier,
    OctetString,
    PrintableString,
    Sequence,
    SetOf,
    UtcTime,
    Utf8String,
    decode_der,
    encode_der,
    encode_integer,
    decode_integer,
)
from repro.asn1.oids import OID_NAMES, OID_VALUES, oid_name

__all__ = [
    "Asn1Error",
    "BitString",
    "ContextTag",
    "Null",
    "OID_NAMES",
    "OID_VALUES",
    "ObjectIdentifier",
    "OctetString",
    "PrintableString",
    "Sequence",
    "SetOf",
    "UtcTime",
    "Utf8String",
    "decode_der",
    "decode_integer",
    "encode_der",
    "encode_integer",
    "oid_name",
]
