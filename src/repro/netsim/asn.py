"""Autonomous systems and address allocation.

The paper's Figure 5 and Figure 8b group hosts by the AS announcing
their address; the simulation allocates every deployment's address
from an AS's CIDR blocks so the analysis can recover that grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.ipaddr import CidrBlock, format_ipv4
from repro.util.rng import DeterministicRng


@dataclass
class AutonomousSystem:
    """One AS: number, descriptive name, and its address blocks."""

    asn: int
    name: str
    blocks: list[CidrBlock] = field(default_factory=list)
    # Profile hint used by the population builder ("iiot-isp",
    # "regional-isp", "enterprise", ...).
    profile: str = "generic"

    def contains(self, address: int) -> bool:
        return any(address in block for block in self.blocks)


class AsRegistry:
    """Allocates addresses and answers IP → AS lookups."""

    def __init__(self):
        self._systems: dict[int, AutonomousSystem] = {}
        self._cursor: dict[int, int] = {}

    def register(self, system: AutonomousSystem) -> AutonomousSystem:
        if system.asn in self._systems:
            raise ValueError(f"duplicate ASN: {system.asn}")
        for block in system.blocks:
            for other in self._systems.values():
                for existing in other.blocks:
                    if (block.first <= existing.last
                            and existing.first <= block.last):
                        raise ValueError(
                            f"block {block} overlaps {existing} (AS{other.asn})"
                        )
        self._systems[system.asn] = system
        self._cursor[system.asn] = 0
        return system

    def __len__(self) -> int:
        return len(self._systems)

    def all_systems(self) -> list[AutonomousSystem]:
        return list(self._systems.values())

    def get(self, asn: int) -> AutonomousSystem:
        try:
            return self._systems[asn]
        except KeyError:
            raise KeyError(f"unknown ASN: {asn}") from None

    def lookup(self, address: int) -> AutonomousSystem | None:
        for system in self._systems.values():
            if system.contains(address):
                return system
        return None

    def allocate_address(self, asn: int, rng: DeterministicRng) -> int:
        """Hand out a fresh address inside the AS (never reused).

        Addresses are spread pseudo-randomly across the AS's blocks so
        consecutive allocations do not cluster, like real deployments.
        """
        system = self.get(asn)
        total = sum(block.size for block in system.blocks)
        cursor = self._cursor[asn]
        if cursor >= total:
            raise RuntimeError(f"AS{asn} is out of addresses")
        # Permute within the AS via a multiplicative stride coprime to
        # the size, seeded once per AS.
        stride_rng = DeterministicRng(asn, "as-address-stride")
        stride = _coprime_stride(total, stride_rng)
        index = (cursor * stride + stride_rng.randrange(total)) % total
        self._cursor[asn] = cursor + 1
        return _address_at(system, index % total)

    def describe(self, address: int) -> str:
        system = self.lookup(address)
        if system is None:
            return f"{format_ipv4(address)} (unrouted)"
        return f"{format_ipv4(address)} (AS{system.asn} {system.name})"


def _coprime_stride(total: int, rng: DeterministicRng) -> int:
    import math

    while True:
        stride = rng.randrange(1, max(total, 2))
        if math.gcd(stride, total) == 1:
            return stride


def _address_at(system: AutonomousSystem, index: int) -> int:
    for block in system.blocks:
        if index < block.size:
            return block.address_at(index)
        index -= block.size
    raise IndexError("index outside AS blocks")
