"""Longitudinal diff benchmark: streaming-fold throughput per backend.

Stores the session study twice — once as-is and once with every sweep
relabeled a year later under a different seed, the cheapest way to get
two distinct registry entries over an identical record stream — then
times ``StudyCatalog.diff`` through every executor backend.  The diff
itself is churn-free by construction, so the measurement isolates what
dominates real diffs too: decoding and folding every stored record.  The diff digest
must be byte-identical across backends (the same determinism contract
the scan engine carries), and records/second through the streaming
fold lands in the ``diff`` section of ``benchmarks/.sweep_metrics.json``
for ``benchmarks/report.py`` to publish as ``diff_throughput``, which
``benchmarks/compare.py`` gates against ``BENCH_baseline.json``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from benchmarks.test_bench_sweep import _update_metrics
from repro.core.config import StudyConfig
from repro.dataset.catalog import StudyCatalog
from repro.dataset.store import StudyStore

SEED = 20200830
BACKENDS = (("serial", 1), ("thread", 4), ("process", 4), ("async", 8))


@pytest.fixture(scope="module")
def diff_store(study_result, tmp_path_factory):
    root = tmp_path_factory.mktemp("diffstore") / "store"
    store = StudyStore(root)
    key_a = store.save(
        study_result.config, study_result.spec, study_result.snapshots
    )
    shifted = [
        replace(snapshot, date=snapshot.date.replace("2020", "2021"))
        for snapshot in study_result.snapshots
    ]
    key_b = store.save(
        StudyConfig(seed=SEED + 1), study_result.spec, shifted
    )
    return root, key_a, key_b


def test_bench_diff_throughput(diff_store):
    root, key_a, key_b = diff_store
    catalog = StudyCatalog(StudyStore(root))
    # Every backend folds both studies, so throughput is measured over
    # the combined record count.
    records = sum(info.records for info in catalog.list_runs())

    metrics = {}
    reference_digest = None
    serial_seconds = None
    for name, workers in BACKENDS:
        start = time.perf_counter()
        diff = catalog.diff(key_a, key_b, executor=name, workers=workers)
        elapsed = time.perf_counter() - start
        digest = diff.digest()
        if reference_digest is None:
            reference_digest, serial_seconds = digest, elapsed
        else:
            assert digest == reference_digest, (
                f"{name} backend produced a different diff digest"
            )
        metrics[f"{name}x{workers}"] = {
            "seconds": round(elapsed, 3),
            "records": records,
            "records_per_second": round(records / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
        }
        print(
            f"[diff] {name}x{workers}: {records} records in {elapsed:.2f}s "
            f"({records / elapsed:.0f} records/s, "
            f"{serial_seconds / elapsed:.2f}x serial)"
        )

    # The relabeled copy holds the same records, so the diff must fold
    # down to "no longitudinal differences" — anything else means a
    # backend mangled the stream.
    assert diff.is_empty()
    assert diff.servers_a == diff.servers_b

    _update_metrics("diff", metrics)
