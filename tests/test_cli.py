"""CLI tests (cheap commands only; `study` is covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.command == "study"
        assert args.seed == 20200830

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_experiment_accepts_known_id(self):
        args = build_parser().parse_args(["experiment", "fig3", "--seed", "7"])
        assert args.experiment_id == "fig3"
        assert args.seed == 7

    def test_dataset_needs_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset"])

    def test_store_flags(self):
        args = build_parser().parse_args(["study", "--store", "/tmp/s"])
        assert args.store == "/tmp/s"
        assert not args.no_store
        args = build_parser().parse_args(["dataset", "out.jsonl", "--no-store"])
        assert args.no_store

    def test_study_scan_only(self):
        args = build_parser().parse_args(["study", "--scan-only"])
        assert args.scan_only

    def test_analyze_flags(self):
        args = build_parser().parse_args(
            ["analyze", "--store", "/tmp/s", "--analysis", "modes",
             "--analysis", "deficits", "--json", "out.json"]
        )
        assert args.analysis == ["modes", "deficits"]
        assert args.json == "out.json"

    def test_analyze_rejects_unknown_analysis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--analysis", "nope"])

    def test_analyze_choices_pin_the_registry(self):
        """cli.ANALYZE_CHOICES mirrors the registry without importing
        the analysis stack at parser-build time."""
        from repro.analysis.pipeline import ANALYSIS_NAMES
        from repro.cli import ANALYZE_CHOICES

        assert ANALYZE_CHOICES == ANALYSIS_NAMES


class TestCheapCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "ipv6" in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Basic256Sha256" in out
        assert "deprecated" in out


class TestAnalyzeErrors:
    def test_analyze_without_store_exits(self, monkeypatch):
        monkeypatch.delenv("REPRO_STUDY_STORE", raising=False)
        with pytest.raises(SystemExit, match="needs a study store"):
            main(["analyze"])

    def test_analyze_empty_store_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no stored study"):
            main(["analyze", "--store", str(tmp_path / "empty")])

    def test_no_store_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STUDY_STORE", str(tmp_path / "env-store"))
        with pytest.raises(SystemExit, match="needs a study store"):
            main(["analyze", "--no-store"])


class TestScanParser:
    def test_targets_required_for_live(self):
        # Enforced in cmd_scan rather than the parser: --replay runs
        # without a target list (the corpus *is* the target list).
        with pytest.raises(SystemExit, match="--targets"):
            main(["scan", "--live"])

    def test_replay_excludes_live_and_record(self):
        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["scan", "--replay", "c.jsonl.gz", "--live"])
        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["scan", "--replay", "c.jsonl.gz", "--record", "x"])

    def test_replay_missing_corpus_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no corpus file"):
            main(
                ["scan", "--replay", str(tmp_path / "nope.jsonl.gz"),
                 "--no-store"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(
            ["scan", "--live", "--targets", "t.txt"]
        )
        assert args.live
        assert args.port == 4840
        assert args.key_bits == 2048
        assert not args.traverse

    def test_key_bits_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scan", "--live", "--targets", "t", "--key-bits", "768"]
            )


class TestScanCommand:
    def test_refuses_without_live_flag(self, tmp_path):
        listing = tmp_path / "targets.txt"
        listing.write_text("127.0.0.1\n")
        with pytest.raises(SystemExit, match="--live"):
            main(["scan", "--targets", str(listing)])

    def test_refuses_without_contact(self, tmp_path):
        listing = tmp_path / "targets.txt"
        listing.write_text("127.0.0.1\n")
        with pytest.raises(SystemExit, match="--contact"):
            main(["scan", "--live", "--targets", str(listing)])

    def test_refuses_malformed_targets(self, tmp_path, capsys):
        listing = tmp_path / "targets.txt"
        listing.write_text("plc.lab.example\n")
        with pytest.raises(SystemExit, match="IPv4 literal"):
            main(
                [
                    "scan", "--live", "--targets", str(listing),
                    "--contact", "lab@example.org",
                ]
            )

    def test_loopback_scan_end_to_end(
        self, tmp_path, monkeypatch, capsys, rsa_1024
    ):
        """The whole CLI path: identity, gates, async executor, real
        socket, JSONL output."""
        from repro.dataset.io import read_snapshots
        from repro.secure.policies import POLICY_NONE
        from repro.server import EndpointConfig, TcpServerHost
        from repro.uabin.enums import MessageSecurityMode, UserTokenType
        from repro.util.rng import DeterministicRng
        from tests.server.helpers import build_server

        # Key generation must stay in the test sandbox, not the
        # committed cache.
        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))

        server = build_server(
            DeterministicRng(5, "cli-live"),
            rsa_1024,
            endpoint_configs=[
                EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE)
            ],
            token_types=[UserTokenType.ANONYMOUS],
        )
        out = tmp_path / "live.jsonl"
        with TcpServerHost(server) as (host, port):
            listing = tmp_path / "targets.txt"
            listing.write_text(f"127.0.0.1:{port}\n")
            code = main(
                [
                    "scan",
                    "--live",
                    "--targets", str(listing),
                    "--contact", "lab@example.org",
                    "--key-bits", "512",
                    "--rate", "1000",
                    "--per-host-interval", "0",
                    "--out", str(out),
                ]
            )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "1 tcp open / 1 OPC UA" in stdout
        snapshots = read_snapshots(out)
        assert len(snapshots) == 1
        record = snapshots[0].records[0]
        assert record.is_opcua
        assert record.anonymous_accessible()

    def test_record_then_replay_end_to_end(
        self, tmp_path, monkeypatch, capsys, rsa_1024
    ):
        """`scan --live --record` then `scan --replay`: the corpus is
        self-describing (identity rebuilt from metadata) and the
        replayed snapshot is byte-identical to the live one."""
        from repro.core.golden import snapshot_digest
        from repro.dataset.io import read_snapshots
        from repro.secure.policies import POLICY_NONE
        from repro.server import EndpointConfig, TcpServerHost
        from repro.uabin.enums import MessageSecurityMode, UserTokenType
        from repro.util.rng import DeterministicRng
        from tests.server.helpers import build_server

        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))
        server = build_server(
            DeterministicRng(5, "cli-replay"),
            rsa_1024,
            endpoint_configs=[
                EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE)
            ],
            token_types=[UserTokenType.ANONYMOUS],
        )
        corpus = tmp_path / "corpus.jsonl.gz"
        live_out = tmp_path / "live.jsonl"
        replay_out = tmp_path / "replay.jsonl"
        with TcpServerHost(server) as (host, port):
            listing = tmp_path / "targets.txt"
            listing.write_text(f"127.0.0.1:{port}\n")
            code = main(
                [
                    "scan", "--live",
                    "--targets", str(listing),
                    "--contact", "lab@example.org",
                    "--key-bits", "512",
                    "--rate", "1000",
                    "--per-host-interval", "0",
                    "--record", str(corpus),
                    "--out", str(live_out),
                    "--no-store",
                ]
            )
        assert code == 0
        assert "recorded 1 targets" in capsys.readouterr().out
        # Replay long after the server is gone: corpus + metadata only.
        code = main(
            ["scan", "--replay", str(corpus), "--out", str(replay_out),
             "--no-store"]
        )
        assert code == 0
        assert "replayed 1 captured targets" in capsys.readouterr().out
        live = read_snapshots(live_out)[0]
        replayed = read_snapshots(replay_out)[0]
        assert replayed.records[0].is_opcua
        assert snapshot_digest(replayed) == snapshot_digest(live)

    def test_profile_flag_reports_without_changing_records(
        self, tmp_path, monkeypatch, capsys, rsa_1024
    ):
        """--profile appends stage counters, cache hit rates, and a
        cProfile report after the summary — and the records stay
        byte-identical to an unprofiled run."""
        from repro.core.golden import snapshot_digest
        from repro.dataset.io import read_snapshots
        from repro.secure.policies import POLICY_NONE
        from repro.server import EndpointConfig, TcpServerHost
        from repro.uabin.enums import MessageSecurityMode, UserTokenType
        from repro.util.rng import DeterministicRng
        from tests.server.helpers import build_server

        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))
        server = build_server(
            DeterministicRng(5, "cli-profile"),
            rsa_1024,
            endpoint_configs=[
                EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE)
            ],
            token_types=[UserTokenType.ANONYMOUS],
        )
        corpus = tmp_path / "corpus.jsonl.gz"
        with TcpServerHost(server) as (host, port):
            listing = tmp_path / "targets.txt"
            listing.write_text(f"127.0.0.1:{port}\n")
            code = main(
                [
                    "scan", "--live",
                    "--targets", str(listing),
                    "--contact", "lab@example.org",
                    "--key-bits", "512",
                    "--rate", "1000",
                    "--per-host-interval", "0",
                    "--record", str(corpus),
                    "--no-store",
                    "--profile",
                ]
            )
        assert code == 0
        live_stdout = capsys.readouterr().out
        assert "--- profile: per-stage counters ---" in live_stdout
        assert "--- profile: crypto caches ---" in live_stdout
        assert "--- profile: hot functions (cProfile) ---" in live_stdout
        assert "grab" in live_stdout

        plain_out = tmp_path / "plain.jsonl"
        profiled_out = tmp_path / "profiled.jsonl"
        for out_path, extra in (
            (plain_out, []),
            (profiled_out, ["--profile"]),
        ):
            code = main(
                ["scan", "--replay", str(corpus), "--out", str(out_path),
                 "--no-store", *extra]
            )
            assert code == 0
        replay_stdout = capsys.readouterr().out
        assert "--- profile: per-stage counters ---" in replay_stdout
        plain = read_snapshots(plain_out)[0]
        profiled = read_snapshots(profiled_out)[0]
        assert snapshot_digest(profiled) == snapshot_digest(plain)

    def test_stale_corpus_replay_fails_cleanly_on_pooled_backend(
        self, tmp_path, monkeypatch, capsys, rsa_1024
    ):
        """A divergent replay inside a worker thread must surface as
        the `repro: replay:` message, not a raw ScanExecutorError."""
        from repro.secure.policies import POLICY_NONE
        from repro.server import EndpointConfig, TcpServerHost
        from repro.transport.capture import read_corpus, write_corpus
        from repro.uabin.enums import MessageSecurityMode, UserTokenType
        from repro.util.rng import DeterministicRng
        from tests.server.helpers import build_server

        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))
        server = build_server(
            DeterministicRng(5, "cli-stale"),
            rsa_1024,
            endpoint_configs=[
                EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE)
            ],
            token_types=[UserTokenType.ANONYMOUS],
        )
        corpus_path = tmp_path / "corpus.jsonl.gz"
        with TcpServerHost(server) as (host, port):
            listing = tmp_path / "targets.txt"
            listing.write_text(f"127.0.0.1:{port}\n")
            main(
                ["scan", "--live", "--targets", str(listing),
                 "--contact", "lab@example.org", "--key-bits", "512",
                 "--rate", "1000", "--per-host-interval", "0",
                 "--record", str(corpus_path), "--no-store"]
            )
        capsys.readouterr()
        # Tamper the recorded seed: replay rebuilds a different
        # scanner, whose requests diverge from the recording.
        corpus = read_corpus(corpus_path)
        corpus.meta["seed"] = corpus.meta["seed"] + 1
        write_corpus(corpus_path, corpus)
        with pytest.raises(SystemExit, match="repro: replay:"):
            main(
                ["scan", "--replay", str(corpus_path),
                 "--executor", "thread", "--workers", "2", "--no-store"]
            )

    def test_blocklist_excludes_target(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))
        listing = tmp_path / "targets.txt"
        listing.write_text("127.0.0.1:4840\n")
        blocklist = tmp_path / "blocklist.txt"
        blocklist.write_text("# operator opt-out\n127.0.0.0/8\n")
        code = main(
            [
                "scan",
                "--live",
                "--targets", str(listing),
                "--blocklist", str(blocklist),
                "--contact", "lab@example.org",
                "--key-bits", "512",
            ]
        )
        assert code == 0
        assert "1 blocklisted / 0 tcp open" in capsys.readouterr().out

    def test_max_targets_zero_refuses_everything(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))
        listing = tmp_path / "targets.txt"
        listing.write_text("127.0.0.1:4840\n")
        with pytest.raises(SystemExit, match="ethics gate"):
            main(
                [
                    "scan", "--live", "--targets", str(listing),
                    "--contact", "lab@example.org",
                    "--key-bits", "512", "--max-targets", "0",
                ]
            )

    def test_invalid_rate_rejected_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KEYCACHE", str(tmp_path / "keys"))
        listing = tmp_path / "targets.txt"
        listing.write_text("127.0.0.1:4840\n")
        with pytest.raises(SystemExit, match="rate_per_s"):
            main(
                [
                    "scan", "--live", "--targets", str(listing),
                    "--contact", "lab@example.org",
                    "--key-bits", "512", "--rate", "0",
                ]
            )


class TestShardFlags:
    """`repro study --shards N [--shard I] [--resume]` parsing + guards.

    The scan paths themselves are covered by tests/scanner/test_shard*
    against the tiny study; here we pin the flag surface and the error
    messages an operator hits before any scanning starts.
    """

    def test_defaults_are_unsharded(self):
        args = build_parser().parse_args(["study"])
        assert args.shards is None
        assert args.shard is None
        assert not args.resume

    def test_shard_flags_parse(self):
        args = build_parser().parse_args(
            ["study", "--shards", "3", "--shard", "1", "--resume",
             "--store", "/tmp/s"]
        )
        assert (args.shards, args.shard, args.resume) == (3, 1, True)

    def test_shard_requires_shards(self):
        with pytest.raises(SystemExit, match="--shard requires --shards"):
            main(["study", "--shard", "0", "--no-store"])

    def test_resume_requires_shards(self):
        with pytest.raises(SystemExit, match="pass --shards"):
            main(["study", "--resume", "--no-store"])

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            main(["study", "--shards", "0", "--no-store"])

    def test_shard_index_bounds(self, tmp_path):
        with pytest.raises(SystemExit, match=r"--shard must be in \[0, 2\)"):
            main(["study", "--shards", "2", "--shard", "5",
                  "--store", str(tmp_path)])

    def test_single_shard_requires_store(self):
        with pytest.raises(SystemExit, match="checkpoint store"):
            main(["study", "--shards", "2", "--shard", "0", "--no-store"])

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit, match="checkpoint store"):
            main(["study", "--shards", "2", "--resume", "--no-store"])
