"""Secure-handshake benchmark: full handshakes per second, per policy.

Times the complete client/server secure handshake — hello, an
OpenSecureChannel protected at SignAndEncrypt, CreateSession with the
server's signature proof, ActivateSession with the client's — once per
registered secure policy over the in-process loopback stream, and
records handshakes-per-second to ``benchmarks/.sweep_metrics.json``
for ``benchmarks/report.py`` to fold into the
``secure_handshake_throughput`` section that ``benchmarks/compare.py``
gates against ``BENCH_baseline.json``.

The split by policy is the point: the deprecated SHA-1 policies and
the current SHA-256 ones differ in both RSA padding and symmetric
derivation, so a regression confined to one primitive shows up as one
policy's rate falling while the others hold.  Pair with
``report.py --profile`` (the ``secure-channel crypto ops`` section of
``BENCH_profile.txt``) to see which primitive moved.
"""

from __future__ import annotations

import time

from repro.crypto.rsa import generate_rsa_key
from repro.secure.policies import ALL_POLICIES, POLICY_NONE
from repro.server import EndpointConfig
from repro.uabin.enums import MessageSecurityMode
from repro.util.rng import DeterministicRng

from benchmarks.test_bench_sweep import _update_metrics
from tests.server.helpers import build_client, build_server, secure_open

SECURE = [p for p in ALL_POLICIES if p is not POLICY_NONE]
HANDSHAKES_PER_POLICY = 8


def _run_handshakes(policy, rng, server_keys, client_keys) -> float:
    """Seconds for ``HANDSHAKES_PER_POLICY`` full secure handshakes."""
    configs = [
        EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE),
        EndpointConfig(MessageSecurityMode.SIGN_AND_ENCRYPT, policy),
    ]
    server = build_server(
        rng.substream(f"server-{policy.short_label}"),
        server_keys,
        endpoint_configs=configs,
    )
    certificate_der = server.config.certificate.raw_der

    start = time.perf_counter()
    for index in range(HANDSHAKES_PER_POLICY):
        client = build_client(
            server,
            rng.substream(f"client-{policy.short_label}-{index}"),
            client_keys,
        )
        client.hello()
        secure_open(
            client, policy, MessageSecurityMode.SIGN_AND_ENCRYPT,
            certificate_der,
        )
        client.create_session()
        client.activate_session()
        client.close_session()
        client.close()
    return time.perf_counter() - start


def test_bench_secure_handshake_throughput():
    rng = DeterministicRng(20200830, "bench-handshake")
    server_keys = generate_rsa_key(2048, rng.substream("server-keys"))
    client_keys = generate_rsa_key(1024, rng.substream("client-keys"))

    metrics = {}
    for policy in SECURE:
        elapsed = _run_handshakes(policy, rng, server_keys, client_keys)
        rate = HANDSHAKES_PER_POLICY / elapsed
        metrics[policy.name] = {
            "seconds": round(elapsed, 3),
            "handshakes": HANDSHAKES_PER_POLICY,
            "handshakes_per_second": round(rate, 1),
        }
        print(
            f"[handshake] {policy.name}: {HANDSHAKES_PER_POLICY} "
            f"handshakes in {elapsed:.2f}s ({rate:.1f}/s)"
        )

    assert set(metrics) == {p.name for p in SECURE}
    _update_metrics("secure_handshake", metrics)
