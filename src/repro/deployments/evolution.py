"""The study timeline: eight weekly measurements, February–August 2020.

Models everything §5.5 and Figure 2 observe:

* slow growth of the server population and fluctuation of the
  discovery-server population (totals stay within the paper's
  1761–2069 range, 42 % discovery servers in the last measurement);
* continued roll-out of devices carrying the reused AutomataWerk
  certificates (263 devices at the first measurement → ~400 at the
  last);
* 84 certificate renewals on hosts with static addresses, 9 of them
  coinciding with a software update, 7 replacing SHA-1 with SHA-256,
  and one *downgrading* SHA-256 to SHA-1;
* discovery servers announcing endpoints hosted on other machines and
  non-default ports, which the scanner only finds once it follows
  references (from 2020-05-04 on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deployments.population import (
    BuiltHost,
    GENERIC_AS_BASE,
    GENERIC_AS_COUNT,
    PopulationBuilder,
)
from repro.deployments.manufacturers import OPC_FOUNDATION
from repro.netsim.net import SimHost, SimNetwork
from repro.server.endpoints import build_endpoint_descriptions
from repro.server.engine import ServerConfig, UaServer
from repro.uabin.enums import ApplicationType
from repro.util.ipaddr import format_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate

SWEEP_DATES: tuple[str, ...] = (
    "2020-02-09",
    "2020-03-01",
    "2020-04-05",
    "2020-05-04",
    "2020-06-07",
    "2020-07-05",
    "2020-08-02",
    "2020-08-30",
)

# Devices carrying one of the reused AutomataWerk certificates
# (§5.5: 263 → 387 by August, still growing at +3/week).
REUSE_COUNTS = (263, 283, 303, 323, 343, 363, 384, 400)
# Servers (non-discovery) present per sweep.  The 714 non-reuse hosts
# are stable; all growth comes from the continued roll-out of the
# reuse-certificate devices — consistent with §5.5's observation that
# the overall server count "marginally increased" while the reuse
# family kept growing.
SERVER_COUNTS = tuple(714 + reuse for reuse in REUSE_COUNTS)
# Discovery servers per sweep.  Twenty servers sit on non-default
# ports and are only *found* from the follow-references sweep on, so
# measured totals = servers-found + discovery stay within the paper's
# 1761–2069 range, peaking at 2020-05-04 and ending at 1921 (42 %
# discovery share).
DISCOVERY_COUNTS = (818, 823, 853, 1032, 933, 823, 763, 807)

RENEWAL_TOTAL = 84
RENEWALS_WITH_SOFTWARE_UPDATE = 9
RENEWAL_UPGRADES = 7  # SHA-1 → SHA-256
RENEWAL_DOWNGRADES = 1  # SHA-256 → SHA-1


@dataclass
class RenewalEvent:
    """One certificate renewal observed between consecutive sweeps."""

    host_index: int
    sweep_index: int  # first sweep at which the NEW certificate appears
    old_certificate: Certificate
    new_certificate: Certificate
    old_hash: str
    new_hash: str
    software_update: bool
    old_software_version: str | None = None
    new_software_version: str | None = None

    @property
    def is_upgrade(self) -> bool:
        return self.old_hash == "sha1" and self.new_hash == "sha256"

    @property
    def is_downgrade(self) -> bool:
        return self.old_hash == "sha256" and self.new_hash == "sha1"


class StudyTimeline:
    """Presence, renewals, and discovery fleet across the 8 sweeps."""

    def __init__(
        self,
        builder: PopulationBuilder,
        hosts: list[BuiltHost],
        seed: int = 20200830,
        discovery_counts: tuple[int, ...] | None = None,
    ):
        self._builder = builder
        self._hosts = hosts
        self._by_index = {h.index: h for h in hosts}
        # Per-sweep discovery-fleet sizes; overriding (e.g. the golden
        # harness's scaled-down fleet) never perturbs other substreams.
        self.discovery_counts = (
            tuple(discovery_counts)
            if discovery_counts is not None
            else DISCOVERY_COUNTS
        )
        self._rng = DeterministicRng(seed, "timeline")
        self._presence = self._plan_presence()
        self.renewals = self._plan_renewals()
        # sweep -> [(address, asn, ServerConfig)] for the discovery fleet
        self._discovery_cache: dict[
            int, list[tuple[int, int | None, ServerConfig]]
        ] = {}

    # --- presence ---------------------------------------------------------------

    def _plan_presence(self) -> list[set[int]]:
        """Which server hosts exist at each sweep.

        Non-reuse hosts are stable; reuse-family devices roll out over
        the study per :data:`REUSE_COUNTS`.
        """
        reuse = [h for h in self._hosts if h.row.reuse_group in ("R1", "R2", "R3")]
        others = {h.index for h in self._hosts
                  if h.row.reuse_group not in ("R1", "R2", "R3")}
        # Deterministic roll-out order (R1 fully, then R2, then R3) so
        # no reuse group is ever only partially deployed below the
        # 3-host threshold the reuse analysis applies.
        group_rank = {"R1": 0, "R2": 1, "R3": 2}
        reuse_order = [
            h.index
            for h in sorted(
                reuse, key=lambda h: (group_rank[h.row.reuse_group], h.index)
            )
        ]
        presence = []
        for sweep in range(len(SWEEP_DATES)):
            reuse_present = set(reuse_order[: REUSE_COUNTS[sweep]])
            presence.append(reuse_present | others)
        return presence

    def present_hosts(self, sweep: int) -> list[BuiltHost]:
        return [self._by_index[i] for i in sorted(self._presence[sweep])]

    def always_present_indices(self) -> set[int]:
        result = set(self._presence[0])
        for present in self._presence[1:]:
            result &= present
        return result

    # --- renewals ----------------------------------------------------------------

    def _plan_renewals(self) -> list[RenewalEvent]:
        # Renewal hosts must be observable in *every* sweep: present
        # throughout, on the default port (non-default ports are only
        # discovered once follow-references starts), and not sharing a
        # reuse certificate (a shared cert cannot renew on one host).
        stable = sorted(
            i for i in self.always_present_indices()
            if self._by_index[i].port == 4840
        )
        rng = self._rng.substream("renewals")
        # Hosts whose final cert is SHA-256 can model an upgrade; final
        # SHA-1 hosts can model same-hash renewals or the downgrade.
        sha256_hosts = [
            i for i in stable
            if self._by_index[i].certificate.signature_hash == "sha256"
            and self._by_index[i].row.reuse_group is None
        ]
        sha1_hosts = [
            i for i in stable
            if self._by_index[i].certificate.signature_hash == "sha1"
            and self._by_index[i].row.reuse_group is None
        ]
        # Clamp every draw to the available pool: on the full default
        # population the clamps all resolve to the paper's constants
        # (identical sample() calls, identical draws); on reduced
        # populations — the golden harness scans a handful of spec
        # rows — the renewal storyline degrades gracefully instead of
        # raising on an over-sized sample.
        upgrades = rng.sample(
            sha256_hosts, min(RENEWAL_UPGRADES, len(sha256_hosts))
        )
        downgrades = rng.sample(
            sha1_hosts, min(RENEWAL_DOWNGRADES, len(sha1_hosts))
        )
        taken = set(upgrades) | set(downgrades)
        # Software-update renewals must land on accessible hosts: the
        # SoftwareVersion field is only readable through the anonymous
        # session, exactly as in the paper's §5.5 observation.
        accessible_pool = [
            i for i in stable
            if self._by_index[i].row.accessible
            and self._by_index[i].row.reuse_group is None
            and not self._by_index[i].row.anon_on_secure_only
            and i not in taken
        ]
        software_updaters = rng.sample(
            accessible_pool,
            min(RENEWALS_WITH_SOFTWARE_UPDATE, len(accessible_pool)),
        )
        taken |= set(software_updaters)
        remaining_pool = [
            i for i in sha1_hosts + sha256_hosts if i not in taken
        ]
        same_hash_budget = (
            RENEWAL_TOTAL
            - len(upgrades)
            - len(downgrades)
            - len(software_updaters)
        )
        same_hash = rng.sample(
            remaining_pool, min(same_hash_budget, len(remaining_pool))
        )
        events = []
        chosen = upgrades + downgrades + software_updaters + same_hash
        software_update_flags = [False] * len(upgrades + downgrades) + [
            True
        ] * len(software_updaters) + [False] * len(same_hash)
        for position, host_index in enumerate(chosen):
            host = self._by_index[host_index]
            new_hash = host.certificate.signature_hash
            if host_index in upgrades:
                old_hash = "sha1"
            elif host_index in downgrades:
                old_hash = "sha256"
            else:
                old_hash = new_hash
            sweep_index = rng.randrange(1, len(SWEEP_DATES))
            old_cert = self._make_old_certificate(host, old_hash)
            event = RenewalEvent(
                host_index=host_index,
                sweep_index=sweep_index,
                old_certificate=old_cert,
                new_certificate=host.certificate,
                old_hash=old_hash,
                new_hash=new_hash,
                software_update=software_update_flags[position],
                old_software_version=self._older_version(host),
                new_software_version=host.server.config.software_version,
            )
            host.renewal = event
            events.append(event)
        return events

    def _make_old_certificate(self, host: BuiltHost, old_hash: str) -> Certificate:
        """The pre-renewal certificate: same key, older validity."""
        pair_key = host.server.config.private_key
        rng = self._rng.substream(f"old-cert-{host.index}")
        return (
            CertificateBuilder()
            .subject(host.certificate.subject)
            .public_key(host.certificate.public_key)
            .valid_from(parse_utc("2015-03-01"))
            .valid_for_days(365 * 6)
            .application_uri(host.certificate.application_uri or "urn:unknown")
            .self_sign(pair_key, hash_name=old_hash, rng=rng)
        )

    def _older_version(self, host: BuiltHost) -> str:
        version = host.server.config.software_version
        parts = version.split(".")
        if parts[0].isdigit() and int(parts[0]) > 1:
            return ".".join([str(int(parts[0]) - 1)] + parts[1:])
        return version + "-rc1"

    # --- network assembly ----------------------------------------------------------

    def warm_discovery_allocations(self, sweeps: int) -> None:
        """Replay discovery-spec allocation for sweeps ``[0, sweeps)``.

        Discovery addresses draw from the builder's shared AS registry,
        so the fleet's addresses depend on *allocation order*: a live
        study allocates sweep 0 first, then 1, and so on.  A rebuilt
        environment (store-loaded result) that jumped straight to
        ``network_for_sweep(7)`` would hand sweep 7 the addresses the
        original run gave sweep 0.  Warming in sweep order reproduces
        the original allocation sequence exactly.
        """
        for sweep in range(sweeps):
            if sweep not in self._discovery_cache:
                self._discovery_cache[sweep] = self._build_discovery_specs(
                    sweep
                )

    def network_for_sweep(self, sweep: int) -> SimNetwork:
        """Assemble the simulated Internet as of sweep ``sweep``."""
        date = parse_utc(SWEEP_DATES[sweep])
        network = SimNetwork(SimClock(date))
        for host in self.present_hosts(sweep):
            self._apply_renewal_state(host, sweep)
            # Re-key connection randomness per (sweep, host): responses
            # then depend only on the sweep index, never on how many
            # connections previous sweeps opened — required for the
            # parallel scan backends to match serial runs exactly.
            host.server.reseed(
                self._rng.substream(f"sweep-{sweep}/server-{host.index}")
            )
            # Address-churn personalities live at a different address
            # each sweep; everyone else keeps their stable one.  The
            # factory is personality-wrapped, so hostile transports
            # answer on the simulated lane exactly as they would over
            # a real socket.
            address = host.address_for_sweep(sweep)
            sim_host = network.host(address)
            if sim_host is None:
                sim_host = SimHost(address=address, asn=host.asn)
                network.add_host(sim_host)
            sim_host.listen(host.port, host.connection_factory())
        for sim_host, server in self._discovery_hosts(sweep):
            existing = network.host(sim_host.address)
            if existing is None:
                network.add_host(sim_host)
                existing = sim_host
            if 4840 not in existing.listeners:
                existing.listen(4840, server.new_connection)
        return network

    def _apply_renewal_state(self, host: BuiltHost, sweep: int) -> None:
        event = host.renewal
        if event is None:
            return
        config = host.server.config
        if sweep < event.sweep_index:
            config.certificate = event.old_certificate
            if event.software_update and event.old_software_version:
                config.software_version = event.old_software_version
                config.address_space.set_software_version(
                    event.old_software_version
                )
        else:
            config.certificate = event.new_certificate
            if event.software_update and event.new_software_version:
                config.software_version = event.new_software_version
                config.address_space.set_software_version(
                    event.new_software_version
                )

    # --- discovery fleet -------------------------------------------------------------

    def _discovery_hosts(self, sweep: int):
        """Discovery servers for this sweep.

        The specs (addresses, announced endpoints) are built once per
        sweep and cached — address allocation draws from the shared AS
        registry, so rebuilding would hand the fleet new addresses on
        every call.  Server instances are created fresh per assembly
        from pure per-index RNG substreams, which makes
        ``network_for_sweep`` idempotent: benchmarks re-assemble the
        same sweep once per executor backend and must get an identical
        Internet each time.
        """
        specs = self._discovery_cache.get(sweep)
        if specs is None:
            specs = self._build_discovery_specs(sweep)
            self._discovery_cache[sweep] = specs
        rng = self._rng.substream(f"discovery-{sweep}")
        return [
            (
                SimHost(address=address, asn=asn),
                UaServer(config, rng.substream(f"lds-{index}")),
            )
            for index, (address, asn, config) in enumerate(specs)
        ]

    def _build_discovery_specs(self, sweep: int):
        rng = self._rng.substream(f"discovery-{sweep}")
        count = self.discovery_counts[sweep]
        present = self.present_hosts(sweep)
        referenced = [h for h in present if h.port != 4840] or present[:5]
        registry = self._builder.as_registry
        result = []
        for index in range(count):
            asn = GENERIC_AS_BASE + rng.randrange(GENERIC_AS_COUNT)
            address = registry.allocate_address(asn, rng)
            # Each discovery server announces endpoints on 1-3 other
            # hosts; non-default-port servers are over-represented so
            # follow-references finds them.
            announced = []
            targets = rng.sample(
                referenced, k=min(len(referenced), rng.randrange(1, 3))
            ) + rng.sample(present, k=1)
            for target in targets:
                announced.extend(
                    build_endpoint_descriptions(
                        endpoint_url=target.url,
                        application_uri=target.server.config.application_uri,
                        product_uri=target.server.config.product_uri,
                        application_name=target.server.config.application_name,
                        application_type=ApplicationType.SERVER,
                        endpoint_configs=target.server.config.endpoint_configs,
                        token_types=target.server.config.token_types,
                        certificate_der=(
                            target.server.config.certificate.raw_der
                            if target.server.config.certificate
                            else None
                        ),
                    )
                )
            config = ServerConfig(
                application_uri=f"{OPC_FOUNDATION.uri_prefix}:{sweep}:{index}",
                application_name="UA Local Discovery Server",
                endpoint_url=f"opc.tcp://{format_ipv4(address)}:4840/",
                product_uri=OPC_FOUNDATION.product_uri,
                application_type=ApplicationType.DISCOVERY_SERVER,
                announced_endpoints=announced,
            )
            result.append((address, asn, config))
        return result
