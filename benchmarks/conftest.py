"""Shared fixture: one full study run per benchmark session.

Building the population and scanning eight sweeps is the expensive
part and not what the benchmarks measure; each benchmark times the
*analysis* that regenerates one table or figure, which is what someone
replicating the paper on their own scan data would run repeatedly.
"""

from __future__ import annotations

import os
from pathlib import Path

# Pin the RSA key cache to the committed one before repro imports, so
# CI and fresh clones never regenerate 2048-bit keys.
os.environ.setdefault(
    "REPRO_KEYCACHE", str(Path(__file__).resolve().parents[1] / ".keycache")
)

import pytest  # noqa: E402

from repro.core.study import default_study_result  # noqa: E402


@pytest.fixture(scope="session")
def study_result():
    return default_study_result()


def print_report(report) -> None:
    print()
    print(report.render())
    print(
        f"[{report.experiment_id}] {report.exact_matches()}/"
        f"{len(report.comparisons)} metrics match the paper exactly"
    )
