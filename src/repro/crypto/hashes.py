"""Hash algorithm registry.

The paper's certificate analysis distinguishes MD5, SHA-1, and SHA-256
signatures (Figure 4); this module centralizes their metadata so the
policy table, the certificate builder, and the analysis all agree on
names and digest sizes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class HashAlgorithm:
    """Metadata for one digest algorithm."""

    name: str
    digest_size: int
    block_size: int
    # Strength ordering used when the analysis asks whether a
    # certificate is weaker/stronger than its policy requires.
    strength_rank: int

    def new(self):
        return hashlib.new(self.name)

    def digest(self, data: bytes) -> bytes:
        h = self.new()
        h.update(data)
        return h.digest()


MD5 = HashAlgorithm("md5", 16, 64, 0)
SHA1 = HashAlgorithm("sha1", 20, 64, 1)
SHA256 = HashAlgorithm("sha256", 32, 64, 2)

_REGISTRY = {alg.name: alg for alg in (MD5, SHA1, SHA256)}


def get_hash(name: str) -> HashAlgorithm:
    """Look up a hash algorithm by canonical lowercase name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(f"unsupported hash algorithm: {name!r}") from None


def hash_bytes(name: str, data: bytes) -> bytes:
    return get_hash(name).digest(data)
