"""Bench-regression diff: BENCH_sweep.json vs. the committed baseline.

Usage::

    python benchmarks/compare.py                      # compare, warn >15%
    python benchmarks/compare.py --threshold 0.10
    python benchmarks/compare.py --fail-on-regression # exit 1 on regression
    python benchmarks/compare.py --write-baseline     # refresh baseline

Compares the headline throughput sections of a bench report —
``grab_throughput`` (hosts/second through the full grab pipeline),
``probe_throughput`` (addresses/second through the SYN stage),
``sharded_throughput`` (hosts/second through a sharded sweep + merge),
``hostile_grab_throughput`` (hosts/second through the device-zoo
population, i.e. the grab pipeline's failure paths),
``diff_throughput`` (records/second through the streaming catalog
fold behind ``repro diff``), and ``secure_handshake_throughput``
(full secure handshakes/second, keyed per security policy rather than
per backend) — against ``BENCH_baseline.json``.  A backend
running more than ``--threshold`` (default 15 %) slower than baseline
prints a GitHub ``::warning::`` annotation, and a section or backend
present in the baseline but *absent* from the report counts as a
regression outright (a benchmark that stops being measured can never
regress otherwise); the exit code stays 0 unless
``--fail-on-regression`` (or its older spelling ``--strict``) is
given, because absolute throughput is machine-dependent and CI
runners vary — by default the warning is a tripwire, not a gate.
The main-branch CI tier runs with ``--fail-on-regression`` so a
merged slowdown fails visibly instead of silently shifting the
baseline.  Faster-than-baseline results are reported too, so a stale
baseline is visible.

``--write-baseline`` extracts the throughput sections of the current
report into the baseline file; commit the result to move the bar.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_REPORT = REPO_ROOT / "BENCH_sweep.json"
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"

SECTIONS = (
    "grab_throughput",
    "probe_throughput",
    "sharded_throughput",
    "hostile_grab_throughput",
    "diff_throughput",
    "secure_handshake_throughput",
)
RATE_KEYS = {
    "grab_throughput": "hosts_per_second",
    "probe_throughput": "addresses_per_second",
    "sharded_throughput": "hosts_per_second",
    "hostile_grab_throughput": "hosts_per_second",
    "diff_throughput": "records_per_second",
    # Keyed per security policy, not per backend: the handshake is
    # single-connection, so the interesting split is crypto suite.
    "secure_handshake_throughput": "handshakes_per_second",
}


def extract_rates(report: dict) -> dict[str, dict[str, float]]:
    """``{section: {backend: rate}}`` from a BENCH_sweep.json payload."""
    rates: dict[str, dict[str, float]] = {}
    for section in SECTIONS:
        block = report.get(section)
        if not isinstance(block, dict):
            continue
        per_backend = block.get(RATE_KEYS[section])
        if not isinstance(per_backend, dict):
            continue
        rates[section] = {
            backend: float(rate)
            for backend, rate in per_backend.items()
            if isinstance(rate, (int, float))
        }
    return rates


def compare(
    current: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    threshold: float,
) -> list[str]:
    """Regression messages, one per backend slower than baseline —
    or present in the baseline but absent from the current report.

    A missing section/backend is a *failure*, not a skip: a benchmark
    that silently stops being measured can never regress, which is
    exactly how a regression gate rots.
    """
    regressions = []
    for section, base_rates in baseline.items():
        for backend, base_rate in base_rates.items():
            rate = current.get(section, {}).get(backend)
            if rate is None:
                print(
                    f"[compare] {section}/{backend}: "
                    "missing from current report"
                )
                regressions.append(
                    f"{section}/{backend} is in the baseline but missing "
                    f"from the current report (baseline {base_rate:.1f}/s "
                    "— was the benchmark removed without refreshing the "
                    "baseline?)"
                )
                continue
            change = (rate - base_rate) / base_rate if base_rate else 0.0
            print(
                f"[compare] {section}/{backend}: {rate:.1f}/s "
                f"vs. baseline {base_rate:.1f}/s ({change:+.1%})"
            )
            if change < -threshold:
                regressions.append(
                    f"{section}/{backend} regressed {-change:.1%} "
                    f"({base_rate:.1f} -> {rate:.1f} per second)"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", type=Path, default=DEFAULT_REPORT,
        help=f"bench report to check (default: {DEFAULT_REPORT.name})",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative slowdown that triggers a warning (default: 0.15)",
    )
    parser.add_argument(
        "--fail-on-regression", "--strict",
        action="store_true",
        dest="fail_on_regression",
        help="exit 1 when any backend regresses past the threshold",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current report and exit",
    )
    args = parser.parse_args(argv)

    if not args.report.exists():
        print(f"[compare] no report at {args.report}; nothing to compare")
        return 0
    current = extract_rates(json.loads(args.report.read_text()))

    if args.write_baseline:
        payload = {
            "_comment": (
                "Throughput baseline for benchmarks/compare.py. Refresh "
                "with: python benchmarks/compare.py --write-baseline"
            ),
            **current,
        }
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[compare] wrote {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"[compare] no baseline at {args.baseline}; run with "
            "--write-baseline to create one"
        )
        return 0
    baseline = {
        section: rates
        for section, rates in json.loads(args.baseline.read_text()).items()
        if section in SECTIONS
    }

    regressions = compare(current, baseline, args.threshold)
    for message in regressions:
        # GitHub Actions renders ::warning:: as an inline annotation.
        print(f"::warning title=bench regression::{message}")
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
