"""Live socket transport tests (loopback only; no external traffic)."""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.transport.messages import TransportTimeout
from repro.transport.socket_io import (
    Transport,
    WallClock,
    connect_blocking,
    shared_io_loop,
)


def _start_server(handler) -> tuple[asyncio.Server, int]:
    loop = shared_io_loop()
    server = asyncio.run_coroutine_threadsafe(
        asyncio.start_server(handler, "127.0.0.1", 0), loop
    ).result(10)
    return server, server.sockets[0].getsockname()[1]


def _stop_server(server: asyncio.Server) -> None:
    loop = shared_io_loop()

    async def shutdown():
        server.close()
        await server.wait_closed()

    try:
        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(10)
    except FutureTimeoutError:
        pass


@pytest.fixture()
def echo_server():
    async def handler(reader, writer):
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        finally:
            writer.close()

    server, port = _start_server(handler)
    yield port
    _stop_server(server)


class TestBlockingSocketTransport:
    def test_echo_round_trip_and_counters(self, echo_server):
        transport = connect_blocking("127.0.0.1", echo_server)
        try:
            transport.write(b"ping")
            received = b""
            while len(received) < 4:
                chunk = transport.read()
                assert chunk, "peer closed before echoing"
                received += chunk
            assert received == b"ping"
            assert transport.bytes_sent == 4
            assert transport.bytes_received == 4
        finally:
            transport.close()

    def test_satisfies_transport_protocol(self, echo_server):
        transport = connect_blocking("127.0.0.1", echo_server)
        try:
            assert isinstance(transport, Transport)
        finally:
            transport.close()

    def test_sim_socket_satisfies_transport_protocol(self):
        from repro.netsim.net import SimSocket
        from repro.util.simtime import SimClock
        from repro.netsim.latency import ZeroLatency

        class _NullConnection:
            closed = False

            def receive(self, data: bytes) -> bytes:
                return b""

        socket = SimSocket(
            _NullConnection(), SimClock(), ZeroLatency(), None
        )
        assert isinstance(socket, Transport)

    def test_read_timeout_raises(self):
        async def handler(reader, writer):
            await reader.read(65536)  # swallow, never answer

        server, port = _start_server(handler)
        try:
            transport = connect_blocking(
                "127.0.0.1", port, read_timeout_s=0.2
            )
            try:
                transport.write(b"anyone there?")
                with pytest.raises(TransportTimeout):
                    transport.read()
            finally:
                transport.close()
        finally:
            _stop_server(server)

    def test_eof_reads_empty(self):
        async def handler(reader, writer):
            writer.close()

        server, port = _start_server(handler)
        try:
            transport = connect_blocking("127.0.0.1", port)
            try:
                assert transport.read() == b""
            finally:
                transport.close()
        finally:
            _stop_server(server)

    def test_connection_deadline_clips_reads(self):
        async def handler(reader, writer):
            await reader.read(65536)  # silent peer

        server, port = _start_server(handler)
        try:
            transport = connect_blocking(
                "127.0.0.1",
                port,
                read_timeout_s=30.0,
                connection_deadline_s=0.3,
            )
            try:
                started = time.monotonic()
                with pytest.raises(TransportTimeout):
                    transport.read()
                    transport.read()  # deadline already exhausted
                assert time.monotonic() - started < 5
            finally:
                transport.close()
        finally:
            _stop_server(server)

    def test_connect_refused_propagates_oserror(self):
        async def handler(reader, writer):
            writer.close()

        # Bind then immediately close to get a port nothing listens on.
        server, port = _start_server(handler)
        _stop_server(server)
        with pytest.raises(OSError):
            connect_blocking("127.0.0.1", port, connect_timeout_s=2)

    def test_partial_frame_delivery_reassembles(self, echo_server):
        """Frames split across TCP segments reach the client whole."""
        from repro.transport.connection import FrameReader, encode_frame
        from repro.transport.messages import MessageType

        frame = encode_frame(MessageType.MESSAGE, "F", b"z" * 300)

        async def handler(reader, writer):
            await reader.read(65536)
            writer.write(frame[:11])
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.write(frame[11:])
            await writer.drain()

        server, port = _start_server(handler)
        try:
            transport = connect_blocking("127.0.0.1", port)
            try:
                transport.write(b"go")
                reader = FrameReader()
                while True:
                    reader.feed(transport.read())
                    parsed = reader.next_frame()
                    if parsed is not None:
                        break
                header, body = parsed
                assert body == b"z" * 300
            finally:
                transport.close()
        finally:
            _stop_server(server)


class TestWallClock:
    def test_now_is_utc(self):
        assert WallClock().now().tzinfo is not None

    def test_advance_sleeps(self):
        slept = []
        clock = WallClock(sleep=slept.append)
        clock.advance(0.25)
        clock.advance(0)  # zero advance must not sleep at all
        assert slept == [0.25]

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            WallClock().advance(-1)
