"""Pure-Python AES-128/192/256 with CBC mode.

Used by the SignAndEncrypt message security mode.  Throughput is a few
hundred kB/s, which is ample for the simulation's small service
messages; the implementation is the straightforward FIPS-197 table
version.
"""

from __future__ import annotations

from repro.crypto.cache import KeyedOpCache

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


_MUL2 = [_xtime(i) for i in range(256)]
_MUL3 = [_MUL2[i] ^ i for i in range(256)]


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


_MUL9 = [_gf_mul(i, 9) for i in range(256)]
_MUL11 = [_gf_mul(i, 11) for i in range(256)]
_MUL13 = [_gf_mul(i, 13) for i in range(256)]
_MUL14 = [_gf_mul(i, 14) for i in range(256)]


class AesCipher:
    """AES block cipher (ECB single-block primitive)."""

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length: {len(key)}")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (self._rounds + 1)):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                word = [_SBOX[b] for b in word]
            words.append([words[i - nk][j] ^ word[j] for j in range(4)])
        return [
            sum(words[4 * r : 4 * r + 4], [])
            for r in range(self._rounds + 1)
        ]

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._rounds):
            state = [_SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for rnd in range(self._rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
            self._add_round_key(state, self._round_keys[rnd])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # State is column-major: byte index = 4*col + row.
    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = s[4 * c : 4 * c + 4]
            out[4 * c + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = s[4 * c : 4 * c + 4]
            out[4 * c + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out


# Key-schedule memo: expanding an AES key costs more than encrypting a
# block, and the session layer builds a fresh cipher per protected
# message over the same channel keys.  AesCipher is immutable after
# construction, so sharing one instance per key is safe.
_KEY_SCHEDULES = KeyedOpCache("aes-key-schedule", maxsize=1024)


def cipher_for_key(key: bytes) -> AesCipher:
    """Shared :class:`AesCipher` for ``key``, memoizing key expansion."""
    key = bytes(key)
    cipher = _KEY_SCHEDULES.get(key)
    if cipher is None:
        cipher = AesCipher(key)
        _KEY_SCHEDULES.put(key, cipher)
    return cipher


class AesCbc:
    """AES in CBC mode without padding (OPC UA pads at a higher layer)."""

    def __init__(self, key: bytes, iv: bytes):
        if len(iv) != 16:
            raise ValueError("CBC IV must be 16 bytes")
        self._cipher = cipher_for_key(key)
        self._iv = iv

    def encrypt(self, plaintext: bytes) -> bytes:
        if len(plaintext) % 16:
            raise ValueError("CBC input must be block-aligned")
        out = bytearray()
        prev = self._iv
        for offset in range(0, len(plaintext), 16):
            block = bytes(
                p ^ c for p, c in zip(plaintext[offset : offset + 16], prev)
            )
            prev = self._cipher.encrypt_block(block)
            out.extend(prev)
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) % 16:
            raise ValueError("CBC input must be block-aligned")
        out = bytearray()
        prev = self._iv
        for offset in range(0, len(ciphertext), 16):
            block = ciphertext[offset : offset + 16]
            plain = self._cipher.decrypt_block(block)
            out.extend(p ^ c for p, c in zip(plain, prev))
            prev = block
        return bytes(out)
