"""TranslateBrowsePathsToNodeIds and RegisterServer tests."""

import pytest

from repro.client import ServiceFaultError
from repro.server.addressspace import NodeIds
from repro.server.engine import ServerConfig, UaServer
from repro.uabin.builtin import LocalizedText
from repro.uabin.enums import ApplicationType
from repro.uabin.nodeid import NodeId
from repro.uabin.types_query import RegisteredServer
from repro.util.rng import DeterministicRng

from tests.server.helpers import build_client, build_server

DEMO_NS = 1


@pytest.fixture()
def qrng():
    return DeterministicRng(808, "query-tests")


@pytest.fixture()
def active_client(qrng, rsa_2048, rsa_1024):
    server = build_server(qrng, rsa_2048)
    client = build_client(server, qrng.substream("c"), rsa_1024)
    client.hello()
    client.open_secure_channel()
    client.create_session()
    client.activate_session()
    return client


class TestTranslateBrowsePaths:
    def test_resolve_variable_path(self, active_client):
        node_id = active_client.translate_browse_path(
            NodeIds.ObjectsFolder,
            (DEMO_NS, "Plant"),
            (DEMO_NS, "m3InflowPerHour"),
        )
        assert node_id == NodeId(DEMO_NS, "Plant/m3InflowPerHour")

    def test_resolve_single_hop(self, active_client):
        node_id = active_client.translate_browse_path(
            NodeIds.RootFolder, (0, "Objects")
        )
        assert node_id == NodeIds.ObjectsFolder

    def test_wrong_name_not_found(self, active_client):
        node_id = active_client.translate_browse_path(
            NodeIds.ObjectsFolder, (DEMO_NS, "NoSuchDevice")
        )
        assert node_id is None

    def test_wrong_namespace_not_found(self, active_client):
        node_id = active_client.translate_browse_path(
            NodeIds.ObjectsFolder, (3, "Plant")
        )
        assert node_id is None

    def test_unknown_starting_node(self, active_client):
        node_id = active_client.translate_browse_path(
            NodeId(9, 999999), (DEMO_NS, "Plant")
        )
        assert node_id is None

    def test_empty_path_rejected(self, active_client):
        node_id = active_client.translate_browse_path(NodeIds.ObjectsFolder)
        assert node_id is None

    def test_resolved_node_readable(self, active_client):
        node_id = active_client.translate_browse_path(
            NodeIds.ObjectsFolder,
            (DEMO_NS, "Plant"),
            (DEMO_NS, "rSetFillLevel"),
        )
        values = active_client.read_values([node_id])
        assert values[0].status.is_good


class TestRegisterServer:
    def make_discovery(self, qrng):
        config = ServerConfig(
            application_uri="urn:test:lds",
            application_name="Test LDS",
            endpoint_url="opc.tcp://10.0.0.250:4840/",
            application_type=ApplicationType.DISCOVERY_SERVER,
        )
        return UaServer(config, qrng.substream("lds"))

    def registration(self, uri="urn:test:registered"):
        return RegisteredServer(
            server_uri=uri,
            product_uri="urn:test:product",
            server_names=[LocalizedText("Registered Server")],
            discovery_urls=["opc.tcp://10.0.0.9:4840/"],
        )

    def test_register_and_find(self, qrng, rsa_1024):
        discovery = self.make_discovery(qrng)
        client = build_client(discovery, qrng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.register_server(self.registration())
        servers = client.find_servers()
        uris = {s.application_uri for s in servers}
        assert "urn:test:registered" in uris
        assert "urn:test:lds" in uris  # the LDS itself

    def test_unregister_via_offline(self, qrng, rsa_1024):
        discovery = self.make_discovery(qrng)
        client = build_client(discovery, qrng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.register_server(self.registration())
        offline = self.registration()
        offline.is_online = False
        client.register_server(offline)
        servers = client.find_servers()
        assert "urn:test:registered" not in {
            s.application_uri for s in servers
        }

    def test_normal_server_rejects_registration(self, qrng, rsa_2048, rsa_1024):
        server = build_server(qrng, rsa_2048)
        client = build_client(server, qrng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        with pytest.raises(ServiceFaultError):
            client.register_server(self.registration())

    def test_invalid_registration_rejected(self, qrng, rsa_1024):
        discovery = self.make_discovery(qrng)
        client = build_client(discovery, qrng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        with pytest.raises(ServiceFaultError):
            client.register_server(RegisteredServer(server_uri=None))
