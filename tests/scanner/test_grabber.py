"""Scanner tests against real servers on the simulated network."""

import pytest

from repro.client import ClientIdentity
from repro.netsim.net import SimHost, SimNetwork
from repro.scanner.campaign import ScanCampaign, ScannerIdentity, parse_endpoint_url
from repro.scanner.grabber import grab_host
from repro.scanner.limits import TraversalBudget
from repro.scanner.records import HostRecord
from repro.secure.policies import POLICY_BASIC256SHA256
from repro.server import EndpointConfig, ServerBehavior
from repro.uabin.enums import MessageSecurityMode, UserTokenType
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import make_self_signed

from tests.server.helpers import build_server


class JunkService:
    """A non-OPC UA service squatting on TCP/4840."""

    closed = False

    def receive(self, data: bytes) -> bytes:
        return b"HTTP/1.0 400 Bad Request\r\n\r\n"


class SilentService:
    closed = True

    def receive(self, data: bytes) -> bytes:
        return b""


@pytest.fixture()
def scan_rng():
    return DeterministicRng(31337, "scanner-tests")


@pytest.fixture()
def scanner_identity(scan_rng, rsa_1024):
    certificate = make_self_signed(
        rsa_1024,
        common_name="research-scanner",
        application_uri="urn:repro:scanner",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=scan_rng.substream("scanner-cert"),
    )
    return ClientIdentity(
        application_uri="urn:repro:scanner",
        application_name="Research Scanner (contact: research@example.org)",
        certificate=certificate,
        private_key=rsa_1024.private,
    )


@pytest.fixture()
def network(scan_rng, rsa_2048):
    net = SimNetwork(SimClock(parse_utc("2020-08-30")))

    def add_server(ip_text, server):
        host = SimHost(address=parse_ipv4(ip_text), asn=64500)
        host.listen(4840, server.new_connection)
        net.add_host(host)
        return host

    add_server("10.0.0.1", build_server(scan_rng.substream("open"), rsa_2048))
    strict = build_server(
        scan_rng.substream("strict"),
        rsa_2048,
        endpoint_configs=[
            EndpointConfig(
                MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256SHA256
            )
        ],
        token_types=[UserTokenType.USERNAME],
        behavior=ServerBehavior(reject_untrusted_client_certs=True),
    )
    add_server("10.0.0.2", strict)

    junk_host = SimHost(address=parse_ipv4("10.0.0.3"), asn=64500)
    junk_host.listen(4840, JunkService)
    net.add_host(junk_host)

    silent_host = SimHost(address=parse_ipv4("10.0.0.4"), asn=64500)
    silent_host.listen(4840, SilentService)
    net.add_host(silent_host)
    return net


class TestGrab:
    def test_open_server_fully_scanned(self, network, scanner_identity, scan_rng):
        record = grab_host(
            network,
            parse_ipv4("10.0.0.1"),
            4840,
            scanner_identity,
            scan_rng,
            budget=TraversalBudget(),
        )
        assert record.tcp_open
        assert record.is_opcua
        assert len(record.endpoints) == 3
        assert record.certificate is not None
        assert record.certificate.key_bits == 2048
        assert record.secure_channel.success
        assert record.session.success
        assert record.nodes is not None
        assert record.nodes.variables >= 3
        assert record.software_version == "3.10.1"
        assert "urn:repro:tests:demo" in record.namespaces

    def test_open_server_rights_counts(self, network, scanner_identity, scan_rng):
        record = grab_host(
            network, parse_ipv4("10.0.0.1"), 4840, scanner_identity, scan_rng
        )
        nodes = record.nodes
        assert nodes.readable_variables >= 2  # inflow + fill level (+ props)
        assert nodes.writable_variables == 1  # rSetFillLevel
        assert nodes.executable_methods == 1  # AddEndpoint
        assert "rSetFillLevel" in nodes.writable_names_sample

    def test_strict_server_secure_channel_rejected(
        self, network, scanner_identity, scan_rng
    ):
        record = grab_host(
            network, parse_ipv4("10.0.0.2"), 4840, scanner_identity, scan_rng
        )
        assert record.is_opcua
        assert record.secure_channel is not None
        assert not record.secure_channel.success
        assert not record.offers_anonymous()
        assert not record.anonymous_accessible()

    def test_junk_service_not_opcua(self, network, scanner_identity, scan_rng):
        record = grab_host(
            network, parse_ipv4("10.0.0.3"), 4840, scanner_identity, scan_rng
        )
        assert record.tcp_open
        assert not record.is_opcua

    def test_silent_service_not_opcua(self, network, scanner_identity, scan_rng):
        record = grab_host(
            network, parse_ipv4("10.0.0.4"), 4840, scanner_identity, scan_rng
        )
        assert record.tcp_open
        assert not record.is_opcua

    def test_no_host(self, network, scanner_identity, scan_rng):
        record = grab_host(
            network, parse_ipv4("10.0.0.99"), 4840, scanner_identity, scan_rng
        )
        assert not record.tcp_open

    def test_record_json_round_trip(self, network, scanner_identity, scan_rng):
        record = grab_host(
            network, parse_ipv4("10.0.0.1"), 4840, scanner_identity, scan_rng
        )
        clone = HostRecord.from_json_dict(record.to_json_dict())
        assert clone == record


class TestCampaign:
    def test_sweep_classifies_all_hosts(
        self, network, scanner_identity, scan_rng
    ):
        campaign = ScanCampaign(
            network,
            ScannerIdentity(scanner_identity),
            scan_rng.substream("campaign"),
        )
        snapshot = campaign.run_sweep(label="2020-08-30")
        assert snapshot.port_open == 4
        assert len(snapshot.reachable()) == 2
        assert snapshot.date == "2020-08-30"

    def test_follow_references_discovers_hidden_host(
        self, network, scanner_identity, scan_rng, rsa_2048
    ):
        # A discovery server announces an endpoint on a non-default port.
        from repro.server import ServerConfig, UaServer
        from repro.uabin.enums import ApplicationType
        from repro.server.endpoints import build_endpoint_descriptions

        hidden = build_server(scan_rng.substream("hidden"), rsa_2048)
        hidden_host = SimHost(address=parse_ipv4("10.0.0.10"), asn=64501)
        hidden_host.listen(4841, hidden.new_connection)
        network.add_host(hidden_host)

        announced = build_endpoint_descriptions(
            endpoint_url="opc.tcp://10.0.0.10:4841/",
            application_uri="urn:repro:tests:hidden",
            product_uri=None,
            application_name="Hidden Server",
            application_type=ApplicationType.SERVER,
            endpoint_configs=hidden.config.endpoint_configs,
            token_types=hidden.config.token_types,
            certificate_der=hidden.config.certificate.raw_der,
        )
        discovery_config = ServerConfig(
            application_uri="urn:repro:tests:lds",
            application_name="Discovery Server",
            endpoint_url="opc.tcp://10.0.0.9:4840/",
            application_type=ApplicationType.DISCOVERY_SERVER,
            announced_endpoints=announced,
        )
        discovery = UaServer(discovery_config, scan_rng.substream("lds"))
        lds_host = SimHost(address=parse_ipv4("10.0.0.9"), asn=64501)
        lds_host.listen(4840, discovery.new_connection)
        network.add_host(lds_host)

        campaign = ScanCampaign(
            network,
            ScannerIdentity(scanner_identity),
            scan_rng.substream("campaign2"),
        )
        without = campaign.run_sweep(label="a", follow_references=False)
        assert not any(r.via_reference for r in without.records)

        with_refs = campaign.run_sweep(label="b", follow_references=True)
        referenced = [r for r in with_refs.records if r.via_reference]
        assert len(referenced) == 1
        assert referenced[0].port == 4841
        assert referenced[0].is_opcua

    def test_blocklist_respected(self, network, scanner_identity, scan_rng):
        from repro.netsim.blocklist import Blocklist

        blocklist = Blocklist()
        blocklist.add("10.0.0.1/32")
        campaign = ScanCampaign(
            network,
            ScannerIdentity(scanner_identity),
            scan_rng.substream("campaign3"),
            blocklist=blocklist,
        )
        snapshot = campaign.run_sweep()
        assert snapshot.excluded == 1
        assert all(r.ip != parse_ipv4("10.0.0.1") for r in snapshot.records)


class TestEndpointUrlParsing:
    @pytest.mark.parametrize(
        "url,expected",
        [
            ("opc.tcp://10.0.0.1:4840/", (parse_ipv4("10.0.0.1"), 4840)),
            ("opc.tcp://10.0.0.1:4841/path", (parse_ipv4("10.0.0.1"), 4841)),
            ("opc.tcp://10.0.0.1/", (parse_ipv4("10.0.0.1"), 4840)),
            ("http://10.0.0.1/", None),
            ("opc.tcp://not-an-ip:4840/", None),
            ("opc.tcp://10.0.0.1:99999/", None),
            (None, None),
            # No port falls back to the IANA-registered 4840; so does a
            # dangling colon (empty port text).
            ("opc.tcp://10.0.0.1", (parse_ipv4("10.0.0.1"), 4840)),
            ("opc.tcp://10.0.0.1:/", (parse_ipv4("10.0.0.1"), 4840)),
            # Port 0 and 65536 are outside the valid TCP range.
            ("opc.tcp://10.0.0.1:0/", None),
            ("opc.tcp://10.0.0.1:65536/", None),
            ("opc.tcp://10.0.0.1:65535/", (parse_ipv4("10.0.0.1"), 65535)),
            ("opc.tcp://10.0.0.1:-1/", None),
            ("opc.tcp://10.0.0.1:4840x/", None),
            # Non-IPv4 hosts (names, IPv6 literals, empties) are skipped:
            # the simulated sweep only targets the IPv4 space.
            ("opc.tcp://server.example.com:4840/", None),
            ("opc.tcp://[2001:db8::1]:4840/", None),
            ("opc.tcp://:4840/", None),
            ("opc.tcp:///path", None),
            ("", None),
            ("opc.tcp://10.0.0.256:4840/", None),
        ],
    )
    def test_parse(self, url, expected):
        assert parse_endpoint_url(url) == expected


class TestErrorTruthfulness:
    """The scanner must not erase or mislabel failure information."""

    def test_session_connect_failure_categorized(
        self, network, scanner_identity, scan_rng
    ):
        """A connection-level session failure records *how* it failed
        instead of an indistinguishable error_status=None."""

        class FailingSessionNetwork:
            """Delegates to the sim, refusing the Nth connect."""

            def __init__(self, inner, fail_on):
                self._inner = inner
                self._fail_on = fail_on
                self._connects = 0
                self.clock = inner.clock

            def host(self, address):
                return self._inner.host(address)

            def connect(self, address, port):
                self._connects += 1
                if self._connects == self._fail_on:
                    from repro.netsim.net import ConnectionRefused

                    raise ConnectionRefused("port closed mid-scan")
                return self._inner.connect(address, port)

        # Connect #1: discovery; #2: secure-channel probe; #3: session.
        wrapped = FailingSessionNetwork(network, fail_on=3)
        record = grab_host(
            wrapped, parse_ipv4("10.0.0.1"), 4840, scanner_identity, scan_rng
        )
        assert record.is_opcua
        assert record.session.attempted
        assert not record.session.success
        assert record.session.error_status is None
        assert record.session.error_category == "refused"

    def test_silent_host_categorized_as_closed(
        self, network, scanner_identity, scan_rng
    ):
        record = grab_host(
            network, parse_ipv4("10.0.0.4"), 4840, scanner_identity, scan_rng
        )
        assert not record.is_opcua
        assert record.error_category == "closed"

    def test_junk_host_not_given_connection_category(
        self, network, scanner_identity, scan_rng
    ):
        """A host that answered with a non-OPC-UA payload is a protocol
        outcome, already captured in `error` — the connection-level
        category stays unset (and the simulated-lane bytes stable)."""
        record = grab_host(
            network, parse_ipv4("10.0.0.3"), 4840, scanner_identity, scan_rng
        )
        assert not record.is_opcua
        assert record.error.startswith("not OPC UA")
        assert record.error_category is None

    def test_connect_refusal_categorized(self, scanner_identity, scan_rng):
        from repro.netsim.net import SimNetwork
        from repro.util.simtime import SimClock

        empty_port_net = SimNetwork(SimClock(parse_utc("2020-08-30")))
        host = SimHost(address=parse_ipv4("10.9.9.9"), asn=None)
        empty_port_net.add_host(host)  # host up, port closed
        record = grab_host(
            empty_port_net,
            parse_ipv4("10.9.9.9"),
            4840,
            scanner_identity,
            scan_rng,
        )
        assert not record.tcp_open
        assert record.error_category == "refused"

    def test_session_detail_failure_marked_and_session_closed(
        self, network, scanner_identity, scan_rng, monkeypatch
    ):
        """Regression for the silent swallow: a post-activation detail
        failure is recorded on the attempt, and CloseSession still
        goes out so servers are not left holding scanner sessions."""
        import repro.scanner.grabber as grabber_module
        from repro.client import UaClient, UaClientError

        def exploding_details(*args, **kwargs):
            raise UaClientError("namespace read blew up")

        closes = []
        original_close = UaClient.close_session
        monkeypatch.setattr(
            grabber_module, "_collect_session_details", exploding_details
        )
        monkeypatch.setattr(
            UaClient,
            "close_session",
            lambda self: closes.append(True) or original_close(self),
        )
        record = grab_host(
            network, parse_ipv4("10.0.0.1"), 4840, scanner_identity, scan_rng
        )
        assert record.session.success  # access itself worked
        assert record.session.details_error is not None
        assert "namespace read blew up" in record.session.details_error
        # Two sessions were opened (anonymous attempt + negotiated
        # re-grab) and both must be closed.
        assert closes == [True, True]

    def test_sparse_fields_omitted_from_canonical_json(
        self, network, scanner_identity, scan_rng
    ):
        """Unset truthfulness fields must not appear in the canonical
        JSON: the golden digests pin the simulated lane's bytes."""
        record = grab_host(
            network, parse_ipv4("10.0.0.1"), 4840, scanner_identity, scan_rng
        )
        data = record.to_json_dict()
        assert "error_category" not in data
        assert "error_category" not in data["session"]
        assert "details_error" not in data["session"]
        clone = HostRecord.from_json_dict(data)
        assert clone == record

    def test_populated_fields_round_trip(self):
        from repro.scanner.records import SessionAttempt

        record = HostRecord(
            ip=1,
            port=4840,
            asn=None,
            timestamp="2020-08-30T00:00:00",
            error_category="timeout",
            session=SessionAttempt(
                attempted=True,
                error_category="refused",
                details_error="protocol: boom",
            ),
        )
        data = record.to_json_dict()
        assert data["error_category"] == "timeout"
        assert data["session"]["error_category"] == "refused"
        assert HostRecord.from_json_dict(data) == record
