"""OPC UA status codes (OPC 10000-4 Annex A / CSV mapping).

A status code is a 32-bit value whose top two bits encode severity
(00 good, 01 uncertain, 10 bad).  The registry below covers every code
the server, client, and scanner raise or interpret; unknown codes
still round-trip and render as hex.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StatusCode:
    value: int

    @property
    def is_good(self) -> bool:
        return (self.value >> 30) == 0

    @property
    def is_uncertain(self) -> bool:
        return (self.value >> 30) == 1

    @property
    def is_bad(self) -> bool:
        return (self.value >> 30) == 2

    @property
    def name(self) -> str:
        return _NAMES.get(self.value, f"0x{self.value:08X}")

    def __repr__(self) -> str:
        return f"StatusCode({self.name})"

    def __bool__(self) -> bool:
        # Truthiness means success, matching gopcua/open62541 idiom.
        return self.is_good


class StatusCodes:
    """Namespace of well-known status code constants."""

    Good = StatusCode(0x00000000)
    BadUnexpectedError = StatusCode(0x80010000)
    BadInternalError = StatusCode(0x80020000)
    BadOutOfMemory = StatusCode(0x80030000)
    BadResourceUnavailable = StatusCode(0x80040000)
    BadCommunicationError = StatusCode(0x80050000)
    BadEncodingError = StatusCode(0x80060000)
    BadDecodingError = StatusCode(0x80070000)
    BadEncodingLimitsExceeded = StatusCode(0x80080000)
    BadRequestTooLarge = StatusCode(0x80B80000)
    BadResponseTooLarge = StatusCode(0x80B90000)
    BadTimeout = StatusCode(0x800A0000)
    BadServiceUnsupported = StatusCode(0x800B0000)
    BadShutdown = StatusCode(0x800C0000)
    BadServerNotConnected = StatusCode(0x800D0000)
    BadServerHalted = StatusCode(0x800E0000)
    BadNothingToDo = StatusCode(0x800F0000)
    BadTooManyOperations = StatusCode(0x80100000)
    BadDataTypeIdUnknown = StatusCode(0x80110000)
    BadCertificateInvalid = StatusCode(0x80120000)
    BadSecurityChecksFailed = StatusCode(0x80130000)
    BadCertificateTimeInvalid = StatusCode(0x80140000)
    BadCertificateIssuerTimeInvalid = StatusCode(0x80150000)
    BadCertificateHostNameInvalid = StatusCode(0x80160000)
    BadCertificateUriInvalid = StatusCode(0x80170000)
    BadCertificateUseNotAllowed = StatusCode(0x80180000)
    BadCertificateIssuerUseNotAllowed = StatusCode(0x80190000)
    BadCertificateUntrusted = StatusCode(0x801A0000)
    BadCertificateRevocationUnknown = StatusCode(0x801B0000)
    BadCertificateRevoked = StatusCode(0x801D0000)
    BadUserAccessDenied = StatusCode(0x801F0000)
    BadIdentityTokenInvalid = StatusCode(0x80200000)
    BadIdentityTokenRejected = StatusCode(0x80210000)
    BadSecureChannelIdInvalid = StatusCode(0x80220000)
    BadInvalidTimestamp = StatusCode(0x80230000)
    BadNonceInvalid = StatusCode(0x80240000)
    BadSessionIdInvalid = StatusCode(0x80250000)
    BadSessionClosed = StatusCode(0x80260000)
    BadSessionNotActivated = StatusCode(0x80270000)
    BadSubscriptionIdInvalid = StatusCode(0x80280000)
    BadRequestHeaderInvalid = StatusCode(0x802A0000)
    BadTimestampsToReturnInvalid = StatusCode(0x802B0000)
    BadRequestCancelledByClient = StatusCode(0x802C0000)
    BadNoCommunication = StatusCode(0x80310000)
    BadWaitingForInitialData = StatusCode(0x80320000)
    BadNodeIdInvalid = StatusCode(0x80330000)
    BadNodeIdUnknown = StatusCode(0x80340000)
    BadAttributeIdInvalid = StatusCode(0x80350000)
    BadIndexRangeInvalid = StatusCode(0x80360000)
    BadIndexRangeNoData = StatusCode(0x80370000)
    BadDataEncodingInvalid = StatusCode(0x80380000)
    BadDataEncodingUnsupported = StatusCode(0x80390000)
    BadNotReadable = StatusCode(0x803A0000)
    BadNotWritable = StatusCode(0x803B0000)
    BadOutOfRange = StatusCode(0x803C0000)
    BadNotSupported = StatusCode(0x803D0000)
    BadNotFound = StatusCode(0x803E0000)
    BadObjectDeleted = StatusCode(0x803F0000)
    BadNotImplemented = StatusCode(0x80400000)
    BadMonitoringModeInvalid = StatusCode(0x80410000)
    BadMonitoredItemIdInvalid = StatusCode(0x80420000)
    BadViewIdUnknown = StatusCode(0x806B0000)
    BadBrowseNameInvalid = StatusCode(0x80600000)
    BadReferenceTypeIdInvalid = StatusCode(0x804C0000)
    BadBrowseDirectionInvalid = StatusCode(0x804D0000)
    BadNodeNotInView = StatusCode(0x804E0000)
    BadRequestTypeInvalid = StatusCode(0x80530000)
    BadSecurityModeRejected = StatusCode(0x80540000)
    BadSecurityPolicyRejected = StatusCode(0x80550000)
    BadTooManySessions = StatusCode(0x80560000)
    BadUserSignatureInvalid = StatusCode(0x80570000)
    BadApplicationSignatureInvalid = StatusCode(0x80580000)
    BadNoValidCertificates = StatusCode(0x80590000)
    BadIdentityChangeNotSupported = StatusCode(0x80C60000)
    BadRequestCancelledByRequest = StatusCode(0x805A0000)
    BadParentNodeIdInvalid = StatusCode(0x805B0000)
    BadReferenceNotAllowed = StatusCode(0x805C0000)
    BadMethodInvalid = StatusCode(0x80750000)
    BadArgumentsMissing = StatusCode(0x80760000)
    BadNotExecutable = StatusCode(0x81110000)
    BadTooManyArguments = StatusCode(0x80E50000)
    BadSecurityModeInsufficient = StatusCode(0x80E60000)
    BadTcpServerTooBusy = StatusCode(0x807D0000)
    BadTcpMessageTypeInvalid = StatusCode(0x807E0000)
    BadTcpSecureChannelUnknown = StatusCode(0x807F0000)
    BadTcpMessageTooLarge = StatusCode(0x80800000)
    BadTcpNotEnoughResources = StatusCode(0x80810000)
    BadTcpInternalError = StatusCode(0x80820000)
    BadTcpEndpointUrlInvalid = StatusCode(0x80830000)
    BadRequestInterrupted = StatusCode(0x80840000)
    BadRequestTimeout = StatusCode(0x80850000)
    BadSecureChannelClosed = StatusCode(0x80860000)
    BadSecureChannelTokenUnknown = StatusCode(0x80870000)
    BadSequenceNumberInvalid = StatusCode(0x80880000)
    BadProtocolVersionUnsupported = StatusCode(0x80BE0000)
    BadConnectionClosed = StatusCode(0x80AE0000)
    BadInvalidState = StatusCode(0x80AF0000)
    BadMaxConnectionsReached = StatusCode(0x80B70000)
    BadInvalidArgument = StatusCode(0x80AB0000)
    UncertainReferenceOutOfServer = StatusCode(0x406C0000)


_NAMES: dict[int, str] = {
    code.value: name
    for name, code in vars(StatusCodes).items()
    if isinstance(code, StatusCode)
}


def lookup_status(value: int) -> StatusCode:
    """Wrap a raw uint32 as a StatusCode (known or not)."""
    return StatusCode(value & 0xFFFFFFFF)
