"""Deterministic, disk-cached RSA key provisioning.

Pure-Python keygen costs ~0.25 s per 1024-bit prime, so generating the
~800 distinct keys of the full population takes minutes.  Keys are
deterministic in (study seed, key label, bits) and cached as JSON on
disk, making every run after the first instant.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, generate_rsa_key
from repro.util.rng import DeterministicRng

DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_KEYCACHE", Path(__file__).resolve().parents[3] / ".keycache")
)


class KeyFactory:
    """Hands out deterministic RSA keys, one per (label, bits)."""

    def __init__(self, seed: int, cache_dir: Path | None = None):
        self._seed = seed
        self._cache_dir = Path(cache_dir) if cache_dir else DEFAULT_CACHE_DIR
        self._memory: dict[tuple[str, int], RsaKeyPair] = {}
        self._generated = 0
        self._loaded = 0

    @property
    def stats(self) -> dict[str, int]:
        return {"generated": self._generated, "loaded": self._loaded}

    def key_for(self, label: str, bits: int) -> RsaKeyPair:
        """Return the key for ``label``; generated at most once ever."""
        return self._provide(label, f"rsa-key/{label}/{bits}", bits)

    def key_for_namespace(self, namespace: str, bits: int) -> RsaKeyPair:
        """A disk-cached key drawn from an explicit RNG namespace.

        Callers that historically generated keys inline (e.g. the
        study's scanner identity) route through here: the key is
        bit-identical to ``generate_rsa_key(bits,
        DeterministicRng(seed, namespace))`` but cached like every
        population key, so no worker or CI run ever regenerates it.
        """
        return self._provide(namespace, namespace, bits)

    def _provide(self, label: str, namespace: str, bits: int) -> RsaKeyPair:
        cache_key = (label, bits)
        if cache_key in self._memory:
            return self._memory[cache_key]
        pair = self._load_from_disk(label, bits)
        if pair is None:
            rng = DeterministicRng(self._seed, namespace)
            pair = generate_rsa_key(bits, rng)
            self._generated += 1
            self._store_to_disk(label, bits, pair)
        else:
            self._loaded += 1
        self._memory[cache_key] = pair
        return pair

    # --- disk cache -----------------------------------------------------------

    def _path_for(self, label: str, bits: int) -> Path:
        safe = label.replace("/", "_").replace(":", "_")
        return self._cache_dir / f"seed{self._seed}" / f"{safe}-{bits}.json"

    def _load_from_disk(self, label: str, bits: int) -> RsaKeyPair | None:
        path = self._path_for(label, bits)
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
            key = RsaPrivateKey(
                n=int(data["n"], 16),
                e=int(data["e"], 16),
                d=int(data["d"], 16),
                p=int(data["p"], 16),
                q=int(data["q"], 16),
            )
        except (KeyError, ValueError, json.JSONDecodeError):
            return None
        if key.bit_length != bits or key.p * key.q != key.n:
            return None
        return RsaKeyPair(key)

    def _store_to_disk(self, label: str, bits: int, pair: RsaKeyPair) -> None:
        path = self._path_for(label, bits)
        path.parent.mkdir(parents=True, exist_ok=True)
        key = pair.private
        payload = {
            "n": f"{key.n:x}",
            "e": f"{key.e:x}",
            "d": f"{key.d:x}",
            "p": f"{key.p:x}",
            "q": f"{key.q:x}",
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
