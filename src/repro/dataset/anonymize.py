"""Anonymization transformations for the dataset release."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.scanner.records import HostRecord, MeasurementSnapshot


@dataclass
class AnonymizationMap:
    """Stable consecutive renumbering of IPs and ASNs.

    The same map must be used across all snapshots of one release so a
    host keeps its pseudonym over time (the longitudinal analyses in
    the paper rely on this property).
    """

    ip_map: dict[int, int] = field(default_factory=dict)
    asn_map: dict[int, int] = field(default_factory=dict)

    def pseudonym_ip(self, ip: int) -> int:
        if ip not in self.ip_map:
            self.ip_map[ip] = len(self.ip_map) + 1
        return self.ip_map[ip]

    def pseudonym_asn(self, asn: int | None) -> int | None:
        if asn is None:
            return None
        if asn not in self.asn_map:
            self.asn_map[asn] = len(self.asn_map) + 1
        return self.asn_map[asn]


def anonymize_record(record: HostRecord, mapping: AnonymizationMap) -> HostRecord:
    """One record, anonymized per the paper's rules."""
    certificate = record.certificate
    if certificate is not None:
        # Blacken fields that could identify the host (the paper
        # blackened FQDNs and equivalent address information) while
        # keeping the analysis-relevant fields.
        certificate = replace(
            certificate,
            subject=_blacken(certificate.subject),
            issuer=_blacken(certificate.issuer),
            application_uri="[redacted]" if certificate.application_uri else None,
            der_hex="",  # raw DER could embed identifying SANs
        )
    nodes = record.nodes
    if nodes is not None:
        # Payload (node names/values) is excluded from the release.
        nodes = replace(
            nodes,
            readable_names_sample=[],
            writable_names_sample=[],
            executable_names_sample=[],
            value_samples=[],
        )
    endpoints = [
        replace(endpoint, endpoint_url=None) for endpoint in record.endpoints
    ]
    return replace(
        record,
        ip=mapping.pseudonym_ip(record.ip),
        asn=mapping.pseudonym_asn(record.asn),
        application_uri=_pseudonymize_uri(record.application_uri),
        endpoints=endpoints,
        certificate=certificate,
        nodes=nodes,
    )


def anonymize_snapshot(
    snapshot: MeasurementSnapshot, mapping: AnonymizationMap
) -> MeasurementSnapshot:
    return MeasurementSnapshot(
        date=snapshot.date,
        records=[anonymize_record(r, mapping) for r in snapshot.records],
        probed=snapshot.probed,
        port_open=snapshot.port_open,
        excluded=snapshot.excluded,
    )


def _blacken(name: str) -> str:
    """Keep the organization (manufacturer attribution), drop the rest."""
    parts = [p for p in name.split(",") if p.startswith("O=")]
    return ",".join(parts + ["CN=[redacted]"])


def _pseudonymize_uri(uri: str | None) -> str | None:
    """Keep the vendor prefix (needed for clustering), drop device ids."""
    if uri is None:
        return None
    head, _, _tail = uri.rpartition(":")
    return f"{head}:[device]" if head else uri
