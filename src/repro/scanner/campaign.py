"""Campaign orchestration: weekly sweeps + follow-references.

A campaign binds the scanner identity (self-signed certificate with
contact information, as the paper's ethics appendix describes), the
opt-out blocklist, and the per-host traversal budget; ``run_sweep``
produces one dated :class:`MeasurementSnapshot`.

From 2020-05-04 on, the paper also connected to host/port combinations
listed as endpoints on already-scanned servers ("follow references",
visible in Figure 2); ``follow_references=True`` reproduces that.

The whole sweep — SYN probing *and* protocol grabbing — runs through a
pluggable :class:`~repro.scanner.executor.ScanExecutor` (serial,
thread pool, fork-based process pool, or asyncio event loop).  The
candidate permutation is cut into :class:`ProbeBatchTask`s (stage 0);
each batch is probed on its own network view, its open addresses
expand into :class:`GrabTask`s (stage 1) that start grabbing while
later batches are still probing, and follow-reference grabs (stage 2)
feed back through the same bounded queue.  Four invariants make every
backend produce byte-identical snapshots:

* each grab derives its RNG purely from ``(seed, date, address,
  port)`` — the sweep substream's namespace embeds the date, and
  :func:`~repro.scanner.grabber.grab_host` derives per-connection
  substreams keyed by address and port;
* each probe batch and each grab runs against a per-task
  :class:`~repro.netsim.net.NetworkView` whose clock starts at sweep
  time, so no task observes another task's pacing;
* the first wave's task keys are all registered before any
  follow-reference task is, because the executor defers stage-2
  registration until the last probe batch has expanded — so a
  referenced endpoint that is also an open first-wave host is always
  classified as first-wave, regardless of completion timing;
* records are assembled canonically — the first wave sorted by
  address, follow-reference records sorted by ``(address, port)`` —
  regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path

from repro.client import ClientIdentity
from repro.netsim.blocklist import Blocklist
from repro.netsim.net import ConnectionRefused, HostDown, SimNetwork
from repro.netsim.tcpscan import DEFAULT_BATCH_SIZE, candidate_batches
from repro.scanner.ethics import LiveScanGate
from repro.scanner.executor import (
    GrabTask,
    ProbeBatchTask,
    ScanExecutor,
    SerialScanExecutor,
    build_executor,
    offload_blocking_grab,
)
from repro.scanner.grabber import grab_host
from repro.scanner.limits import ScanRateLimiter, TraversalBudget
from repro.scanner.records import HostRecord, MeasurementSnapshot
from repro.transport.capture import CaptureCorpus, CaptureRecorder
from repro.transport.replay import ReplayNetwork
from repro.transport.socket_io import (
    DEFAULT_CONNECT_TIMEOUT_S,
    DEFAULT_CONNECTION_DEADLINE_S,
    DEFAULT_READ_TIMEOUT_S,
    WallClock,
    connect_blocking,
)
from repro.transport.messages import TransportTimeout
from repro.util.ipaddr import format_endpoint_host, parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import format_utc

OPCUA_PORT = 4840


@dataclass(frozen=True)
class ProbeBatchOutcome:
    """What one SYN batch learned (stage-0 task result).

    Crosses the worker/coordinator boundary (pickled by the process
    backend), so it carries plain data only.  ``open_addresses``
    preserves permutation order within the batch.
    """

    probed: int
    excluded: int
    open_addresses: tuple[int, ...]


@dataclass(frozen=True)
class ScannerIdentity:
    """The measurement client's identity (paper Appendix A.2)."""

    client_identity: ClientIdentity
    contact_url: str = "https://scan-research.example.org"
    reverse_dns: str = "research-scanner.example.org"


class ScanCampaign:
    """Weekly measurement campaign over a simulated Internet.

    Binds the scanner identity, opt-out blocklist, per-host traversal
    budget, and an executor backend; :meth:`run_sweep` produces one
    dated :class:`~repro.scanner.records.MeasurementSnapshot` whose
    bytes depend only on ``(seed, date)`` — never on the backend or
    batch size.  The live and replay counterparts
    (:class:`LiveScanCampaign`, :class:`ReplayScanCampaign`) reuse the
    same grab sequence over the other two transport lanes.
    """

    def __init__(
        self,
        network: SimNetwork,
        identity: ScannerIdentity,
        rng: DeterministicRng,
        blocklist: Blocklist | None = None,
        budget: TraversalBudget | None = None,
        port: int = OPCUA_PORT,
        executor: ScanExecutor | None = None,
    ):
        self._network = network
        self._identity = identity
        self._rng = rng
        self._blocklist = blocklist or Blocklist()
        self._budget_template = budget or TraversalBudget()
        self._port = port
        self._executor = executor or SerialScanExecutor()

    def run_sweep(
        self,
        label: str | None = None,
        follow_references: bool = False,
        extra_candidates: int = 0,
        traverse: bool = True,
        batch_size: int | None = None,
    ) -> MeasurementSnapshot:
        """One full sweep: port scan, grab every responder, follow refs.

        ``batch_size`` sets the SYN-batch granularity (default:
        :data:`~repro.netsim.tcpscan.DEFAULT_BATCH_SIZE`).  It changes
        only how the candidate permutation is cut into executor tasks,
        never the snapshot bytes.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        date = label or format_utc(self._network.clock.now())[:10]
        sweep_rng = self._rng.substream(f"sweep-{date}")
        counters = {"probed": 0, "excluded": 0, "open": 0}

        def sweep_tasks():
            # zmap→zgrab2 pipelining, both stages through the executor:
            # every fixed-size slice of the candidate permutation is a
            # stage-0 probe task, and pooled backends start grabbing a
            # batch's open addresses while later batches are still
            # probing.
            batches = self._sweep_batches(
                sweep_rng,
                extra_candidates,
                batch_size if batch_size is not None else DEFAULT_BATCH_SIZE,
            )
            for index, batch in enumerate(batches):
                yield ProbeBatchTask(index, self._port, tuple(batch))

        def perform(task):
            if isinstance(task, ProbeBatchTask):
                return self._probe_batch(task, date)
            return self._grab(task, sweep_rng, traverse)

        def expand(task, record):
            if isinstance(task, ProbeBatchTask):
                # Accounting happens here, on the coordinator, so the
                # counters never race and totals are sums — identical
                # whatever order batches complete in.
                counters["probed"] += record.probed
                counters["excluded"] += record.excluded
                counters["open"] += len(record.open_addresses)
                return [
                    GrabTask(address, self._port)
                    for address in record.open_addresses
                ]
            # One level of following, from first-wave records only —
            # the endpoints a referenced server advertises are not
            # followed further (matching the paper's methodology).
            if not follow_references or task.via_reference:
                return []
            out = []
            for address, port in self._referenced_targets([record]):
                if address in self._blocklist:
                    continue
                out.append(GrabTask(address, port, via_reference=True))
            return out

        completed = self._executor.run(sweep_tasks(), perform, expand)
        snapshot = MeasurementSnapshot(
            date=date,
            probed=counters["probed"],
            port_open=counters["open"],
            excluded=counters["excluded"],
        )

        grabbed = [
            pair for pair in completed if isinstance(pair[0], GrabTask)
        ]
        primary = sorted(
            (pair for pair in grabbed if not pair[0].via_reference),
            key=lambda pair: pair[0].key,
        )
        referenced = sorted(
            (pair for pair in grabbed if pair[0].via_reference),
            key=lambda pair: pair[0].key,
        )
        snapshot.records.extend(record for _, record in primary)
        snapshot.records.extend(
            record for _, record in referenced if record.tcp_open
        )
        return snapshot

    def _sweep_batches(self, sweep_rng, extra_candidates, batch_size):
        """Stage-0 candidate batches for one sweep.

        The seam :class:`~repro.scanner.shard.ShardedScanCampaign`
        overrides: it feeds the same candidate permutation through an
        index-mod shard filter before batching, so a shard scans its
        slice of the stream and nothing else changes.
        """
        return candidate_batches(
            self._network,
            self._port,
            sweep_rng,
            extra_candidates=extra_candidates,
            batch_size=batch_size,
        )

    def _probe_batch(
        self, task: ProbeBatchTask, date: str
    ) -> ProbeBatchOutcome:
        """SYN-probe one batch (runs inside executor workers).

        The blocklist is consulted at probe time — candidate
        generation deliberately does not filter (zmap's shard
        permutation is blocklist-agnostic too), so excluded accounting
        is identical whether the stream is probed serially or batched
        across workers.  The per-(sweep, batch) view keeps SYN pacing
        off the shared clock and off other batches' latency streams.
        """
        view = self._network.task_view(f"probe-{date}-{task.index}")
        blocklist = self._blocklist
        addresses = [
            address
            for address in task.addresses
            if address not in blocklist
        ]
        opens = view.probe_many(addresses, task.port)
        return ProbeBatchOutcome(
            probed=len(addresses),
            excluded=len(task.addresses) - len(addresses),
            open_addresses=tuple(opens),
        )

    def _grab(
        self,
        task: GrabTask,
        rng: DeterministicRng,
        traverse: bool = True,
    ) -> HostRecord:
        budget = replace(self._budget_template)
        view = self._network.task_view(f"task-{task.address}-{task.port}")
        return grab_host(
            view,
            task.address,
            task.port,
            self._identity.client_identity,
            rng,
            budget=budget,
            via_reference=task.via_reference,
            traverse=traverse,
        )

    def _referenced_targets(self, records) -> list[tuple[int, int]]:
        """host/port combinations named in scanned endpoint URLs."""
        targets = []
        seen = set()
        for record in records:
            for endpoint in record.endpoints:
                parsed = parse_endpoint_url(endpoint.endpoint_url)
                if parsed is None:
                    continue
                if parsed == (record.ip, record.port):
                    continue
                if parsed not in seen:
                    seen.add(parsed)
                    targets.append(parsed)
        return targets


# --- live lane ---------------------------------------------------------------
#
# The simulated campaign above and the live campaign below share the
# entire protocol stack — grab_host, UaClient, FrameReader — and differ
# only in how bytes move (SimSocket vs. real sockets) and in what gates
# stand in front of a connection.  The live lane never generates
# addresses: it scans exactly the targets it was handed.


class LiveNetwork:
    """Real sockets behind the grabber's network surface.

    Duck-types what :func:`~repro.scanner.grabber.grab_host` needs
    from a :class:`~repro.netsim.net.NetworkView`: ``host`` (ground
    truth — none on a live network), ``clock`` (wall time; traversal
    pacing becomes real pacing), and ``connect`` (a blocking live
    transport with per-connection deadline).  Connect failures are
    mapped onto the simulator's exception taxonomy so the grabber's
    error handling — and the record schema — is lane-independent.
    """

    def __init__(
        self,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        connection_deadline_s: float = DEFAULT_CONNECTION_DEADLINE_S,
        limiter: ScanRateLimiter | None = None,
        clock=None,
        loop=None,
    ):
        self._connect_timeout_s = connect_timeout_s
        self._read_timeout_s = read_timeout_s
        self._connection_deadline_s = connection_deadline_s
        self._limiter = limiter
        self._loop = loop
        self.clock = clock or WallClock()

    def host(self, address: int):
        return None  # no ground truth on live networks

    def connect(self, address: int, port: int):
        # Pacing lives at the connection, not the grab: one grab opens
        # up to four connections (discovery, secure-channel probe,
        # session, negotiated re-grab), and every one of them must
        # respect the global rate and the per-host interval.
        if self._limiter is not None:
            self._limiter.acquire(address)
        host = format_endpoint_host(address)
        try:
            return connect_blocking(
                host,
                port,
                connect_timeout_s=self._connect_timeout_s,
                read_timeout_s=self._read_timeout_s,
                connection_deadline_s=self._connection_deadline_s,
                loop=self._loop,
            )
        except TransportTimeout as exc:
            error = HostDown(f"connect to {host}:{port} timed out")
            error.category = "timeout"
            raise error from exc
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(
                f"{host}:{port} refused the connection"
            ) from exc
        except OSError as exc:
            raise HostDown(f"{host}:{port}: {exc}") from exc


def parse_target_line(line: str, default_port: int = OPCUA_PORT):
    """Parse one targets-file line into ``(address, port)``.

    Accepts ``A.B.C.D`` or ``A.B.C.D:PORT``; returns ``None`` for
    blanks and ``#`` comments.  Hostnames are rejected on purpose:
    an explicit target list means explicit addresses, with no
    resolution step between what was authorized and what is scanned.

        >>> parse_target_line("10.0.0.1:4841  # lab PLC")
        (167772161, 4841)
        >>> parse_target_line("# comment only") is None
        True
        >>> parse_target_line("plc.lab.example")
        Traceback (most recent call last):
            ...
        ValueError: target 'plc.lab.example' is not an IPv4 literal \
(hostnames are not resolved; list addresses explicitly)
    """
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    host, _, port_text = text.partition(":")
    try:
        address = parse_ipv4(host)
    except ValueError:
        raise ValueError(
            f"target {text!r} is not an IPv4 literal (hostnames are "
            "not resolved; list addresses explicitly)"
        ) from None
    port = default_port
    if port_text:
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"target {text!r} has a malformed port") from None
        if not 0 < port < 65536:
            raise ValueError(f"target {text!r} port out of range")
    return address, port


def load_targets(
    path: str | Path, default_port: int = OPCUA_PORT
) -> list[tuple[int, int]]:
    """Read an explicit target list, preserving order, deduplicated."""
    targets: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        try:
            parsed = parse_target_line(line, default_port)
        except ValueError as exc:
            raise ValueError(f"{path}:{number}: {exc}") from None
        if parsed is None or parsed in seen:
            continue
        seen.add(parsed)
        targets.append(parsed)
    return targets


@dataclass(frozen=True)
class LiveScanConfig:
    """Knobs for one live run (timeouts, pacing, concurrency)."""

    workers: int = 8
    connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S
    read_timeout_s: float = DEFAULT_READ_TIMEOUT_S
    connection_deadline_s: float = DEFAULT_CONNECTION_DEADLINE_S
    traverse: bool = False


class LiveScanCampaign:
    """Grab an explicit target list over real sockets.

    The pipeline is the simulated campaign's: ``GrabTask``s fanned
    through a :class:`~repro.scanner.executor.ScanExecutor` (the
    async backend by default — bounded coroutines, per-connection
    deadlines in the transport), records assembled canonically by
    ``(address, port)``.  What changes is what stands in front of a
    connection: the :class:`~repro.scanner.ethics.LiveScanGate`
    (contact identity, bounded explicit list, blocklist) and a
    :class:`~repro.scanner.limits.ScanRateLimiter`.  Follow-references
    are deliberately unsupported — a live run contacts only addresses
    it was explicitly given.
    """

    def __init__(
        self,
        identity: ScannerIdentity,
        rng: DeterministicRng,
        gate: LiveScanGate | None = None,
        config: LiveScanConfig | None = None,
        limiter: ScanRateLimiter | None = None,
        budget: TraversalBudget | None = None,
        executor: ScanExecutor | None = None,
        recorder: CaptureRecorder | None = None,
    ):
        self._identity = identity
        self._rng = rng
        self._gate = gate or LiveScanGate()
        self._config = config or LiveScanConfig()
        self._limiter = limiter or ScanRateLimiter()
        self._budget_template = budget or TraversalBudget()
        self._executor = executor
        self._recorder = recorder
        # The gate runs at construction time: a campaign that cannot
        # pass it should fail before any target list exists.
        self._gate.require_contact(identity)

    def run(
        self, targets: list[tuple[int, int]], label: str | None = None
    ) -> MeasurementSnapshot:
        """Grab every allowed target; returns one dated snapshot.

        Accounting matches the simulated sweep so downstream analyses
        read both snapshots alike: ``probed`` counts targets actually
        contacted, ``excluded`` the ones the blocklist removed.
        """
        self._gate.check_target_count(len(targets))
        allowed: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        excluded = 0
        for address, port in targets:
            if (address, port) in seen:
                continue
            seen.add((address, port))
            if not self._gate.permits(address):
                excluded += 1
                continue
            allowed.append((address, port))

        config = self._config
        executor = self._executor or build_executor(
            "async", max(config.workers, 1)
        )
        date = label or format_utc(WallClock().now())[:10]
        with ThreadPoolExecutor(
            max_workers=max(config.workers, 1),
            thread_name_prefix="live-grab",
        ) as pool:
            grab = offload_blocking_grab(self._grab_sync, pool)
            completed = executor.run(
                (GrabTask(address, port) for address, port in allowed),
                grab,
                lambda task, record: [],
            )

        snapshot = MeasurementSnapshot(
            date=date,
            probed=len(allowed),
            port_open=sum(
                1 for _, record in completed if record.tcp_open
            ),
            excluded=excluded,
        )
        snapshot.records.extend(
            record
            for _, record in sorted(
                completed, key=lambda pair: pair[0].key
            )
        )
        if self._recorder is not None:
            self._recorder.finish(
                snapshot,
                traverse=config.traverse,
                budget=self._budget_template,
            )
        return snapshot

    def _grab_sync(self, task: GrabTask) -> HostRecord:
        # Defence in depth: the list was filtered above, but nothing
        # reaches a socket without passing the gate itself.
        self._gate.check_target(task.address)
        config = self._config
        network = LiveNetwork(
            connect_timeout_s=config.connect_timeout_s,
            read_timeout_s=config.read_timeout_s,
            connection_deadline_s=config.connection_deadline_s,
            limiter=self._limiter,
        )
        if self._recorder is not None:
            network = self._recorder.wrap(
                network, task.address, task.port
            )
        return grab_host(
            network,
            task.address,
            task.port,
            self._identity.client_identity,
            self._rng,
            budget=replace(self._budget_template),
            traverse=config.traverse,
        )


# --- replay lane -------------------------------------------------------------
#
# The third lane on the Transport seam.  A recorded corpus stands in
# for the network: the full grab sequence (UaClient, FrameReader,
# traversal) runs unchanged, but every connect outcome, response byte,
# and clock reading comes from the capture.  No packets leave the
# machine, so no ethics gate stands in front of it — the gate did its
# work when the corpus was recorded.


class ReplayScanCampaign:
    """Re-run a recorded scan from a capture corpus, deterministically.

    Fans one :class:`~repro.transport.capture.TargetCapture` per
    recorded target through a
    :class:`~repro.scanner.executor.ScanExecutor` (any backend —
    replay grabs are pure computation, so serial/thread/process/async
    all produce byte-identical snapshots, assembled in canonical
    ``(address, port)`` order like the live lane's).

    ``identity`` and ``rng`` must match the recording's: the protocol
    driver re-generates every request from them, and strict mode
    verifies each request against the recorded bytes — a mismatch
    means the corpus is stale relative to the code (a regression
    finding) or the replay was configured differently than the
    capture.  Traversal settings default to the corpus metadata the
    recorder stamped at capture time.
    """

    def __init__(
        self,
        corpus: CaptureCorpus,
        identity: ScannerIdentity,
        rng: DeterministicRng,
        executor: ScanExecutor | None = None,
        budget: TraversalBudget | None = None,
        traverse: bool | None = None,
        strict: bool = True,
    ):
        self._corpus = corpus
        self._captures = corpus.target_map()
        self._identity = identity
        self._rng = rng
        self._executor = executor or SerialScanExecutor()
        self._strict = strict
        meta = corpus.meta
        if traverse is None:
            traverse = bool(meta.get("traverse", False))
        self._traverse = traverse
        if budget is None:
            budget = TraversalBudget(**meta.get("budget", {}))
        self._budget_template = budget

    def run(self, label: str | None = None) -> MeasurementSnapshot:
        """Replay every captured target; returns one dated snapshot.

        The snapshot-level counters (``date``, ``probed``,
        ``excluded``) come from the corpus metadata, so a faithful
        replay reproduces the original snapshot byte-for-byte — not
        just its records.
        """
        meta = self._corpus.meta
        date = label or meta.get("label") or "replay"
        completed = self._executor.run(
            (
                GrabTask(capture.address, capture.port)
                for capture in self._corpus.targets
            ),
            self._replay_grab,
            lambda task, record: [],
        )
        snapshot = MeasurementSnapshot(
            date=date,
            probed=meta.get("probed", len(self._corpus.targets)),
            port_open=sum(
                1 for _, record in completed if record.tcp_open
            ),
            excluded=meta.get("excluded", 0),
        )
        snapshot.records.extend(
            record
            for _, record in sorted(
                completed, key=lambda pair: pair[0].key
            )
        )
        return snapshot

    def _replay_grab(self, task: GrabTask) -> HostRecord:
        capture = self._captures[task.key]
        network = ReplayNetwork(capture, strict=self._strict)
        record = grab_host(
            network,
            task.address,
            task.port,
            self._identity.client_identity,
            self._rng,
            budget=replace(self._budget_template),
            traverse=self._traverse,
        )
        if self._strict:
            # Over-consumption fails mid-grab; this catches the other
            # direction — a driver doing *less* than it did at capture
            # time must not pass as a faithful replay.
            network.assert_exhausted()
        return record


def parse_endpoint_url(url: str | None) -> tuple[int, int] | None:
    """Parse ``opc.tcp://a.b.c.d:port/...`` into (address, port).

        >>> parse_endpoint_url("opc.tcp://10.0.0.1:4841/plc")
        (167772161, 4841)
        >>> parse_endpoint_url("opc.tcp://10.0.0.1/")  # default port
        (167772161, 4840)
        >>> parse_endpoint_url("https://10.0.0.1/") is None
        True
    """
    if not url or not url.startswith("opc.tcp://"):
        return None
    rest = url[len("opc.tcp://") :]
    host_port = rest.split("/", 1)[0]
    host, _, port_text = host_port.partition(":")
    try:
        address = parse_ipv4(host)
    except ValueError:
        return None
    if not port_text:
        return address, OPCUA_PORT
    try:
        port = int(port_text)
    except ValueError:
        return None
    if not 0 < port < 65536:
        return None
    return address, port
