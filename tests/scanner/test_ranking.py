"""Unit tests for the shared endpoint-ranking helpers.

These pickers drive three different grab steps (secure probe, session
attempt, negotiated re-grab); their tie-break behaviour is part of the
determinism contract, so it is pinned here explicitly.
"""

from __future__ import annotations

from repro.scanner.ranking import (
    endpoint_policy,
    most_secure_endpoint,
    security_rank,
    weakest_anonymous_endpoint,
)
from repro.scanner.records import EndpointRecord
from repro.secure.policies import (
    POLICY_BASIC128RSA15,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
)
from repro.uabin.enums import MessageSecurityMode, UserTokenType

N = int(MessageSecurityMode.NONE)
S = int(MessageSecurityMode.SIGN)
SE = int(MessageSecurityMode.SIGN_AND_ENCRYPT)
ANON = int(UserTokenType.ANONYMOUS)
USER = int(UserTokenType.USERNAME)


def _ep(mode, policy, tokens=(ANON,)):
    return EndpointRecord(
        endpoint_url="opc.tcp://10.0.0.1:4840/",
        security_mode=mode,
        security_policy_uri=policy.uri if policy is not None else None,
        token_types=list(tokens),
    )


class TestEndpointPolicy:
    def test_known_uri_resolves(self):
        assert endpoint_policy(_ep(SE, POLICY_BASIC256SHA256)) is (
            POLICY_BASIC256SHA256
        )

    def test_missing_and_unknown_uri_are_none(self):
        assert endpoint_policy(_ep(N, None)) is None
        unknown = _ep(SE, POLICY_BASIC256SHA256)
        unknown.security_policy_uri = "http://example.org/NotAPolicy"
        assert endpoint_policy(unknown) is None


class TestSecurityRank:
    def test_policy_dominates_mode(self):
        weak_policy_strong_mode = security_rank(
            POLICY_BASIC128RSA15, MessageSecurityMode.SIGN_AND_ENCRYPT
        )
        strong_policy_weak_mode = security_rank(
            POLICY_BASIC256SHA256, MessageSecurityMode.SIGN
        )
        assert strong_policy_weak_mode > weak_policy_strong_mode


class TestMostSecure:
    def test_picks_strongest_pair(self):
        endpoints = [
            _ep(N, POLICY_NONE),
            _ep(SE, POLICY_BASIC128RSA15),
            _ep(S, POLICY_BASIC256SHA256),
            _ep(SE, POLICY_BASIC256SHA256),
        ]
        endpoint, policy = most_secure_endpoint(endpoints)
        assert policy is POLICY_BASIC256SHA256
        assert endpoint.mode == MessageSecurityMode.SIGN_AND_ENCRYPT

    def test_none_mode_and_unknown_policies_skipped(self):
        endpoints = [_ep(N, POLICY_NONE), _ep(N, None)]
        assert most_secure_endpoint(endpoints) is None

    def test_tie_keeps_first_advertised(self):
        first = _ep(SE, POLICY_BASIC256SHA256)
        second = _ep(SE, POLICY_BASIC256SHA256)
        endpoint, _ = most_secure_endpoint([first, second])
        assert endpoint is first


class TestWeakestAnonymous:
    def test_prefers_none_mode(self):
        endpoints = [
            _ep(SE, POLICY_BASIC256SHA256),
            _ep(N, POLICY_NONE),
        ]
        endpoint, policy = weakest_anonymous_endpoint(endpoints)
        assert policy is POLICY_NONE
        assert endpoint.mode == MessageSecurityMode.NONE

    def test_falls_back_to_weakest_secure(self):
        endpoints = [
            _ep(SE, POLICY_BASIC256SHA256),
            _ep(S, POLICY_BASIC256SHA256),
        ]
        endpoint, policy = weakest_anonymous_endpoint(endpoints)
        assert policy is POLICY_BASIC256SHA256
        assert endpoint.mode == MessageSecurityMode.SIGN

    def test_ignores_endpoints_without_anonymous(self):
        endpoints = [
            _ep(N, POLICY_NONE, tokens=(USER,)),
            _ep(SE, POLICY_BASIC256SHA256),
        ]
        _, policy = weakest_anonymous_endpoint(endpoints)
        assert policy is POLICY_BASIC256SHA256

    def test_no_anonymous_endpoint_is_none(self):
        assert weakest_anonymous_endpoint(
            [_ep(N, POLICY_NONE, tokens=(USER,))]
        ) is None

    def test_tie_keeps_first_advertised(self):
        first = _ep(N, POLICY_NONE)
        second = _ep(N, POLICY_NONE)
        endpoint, _ = weakest_anonymous_endpoint([first, second])
        assert endpoint is first
